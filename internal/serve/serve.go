// Package serve is the synthesis-as-a-service daemon behind cmd/hlsd:
// an HTTP/JSON front end over the public hls façade with a
// content-addressed result cache, so identical — or isomorphic —
// requests are answered from memory instead of re-synthesized.
//
// Endpoints:
//
//   - POST /synthesize — one graph (dfgio JSON) or behavioral source,
//     synthesized under the request config; optional netlist/schedule
//     in the response.
//   - POST /sweep — one graph plus a [cs_lo, cs_hi] range; queued
//     requests with the same config and range are coalesced into a
//     single hls.SweepGraphsCtx fan-out (see batch.go).
//   - POST /certify — synthesize, then run the translation-validation
//     pass and return the lint certificate.
//   - GET /metrics — request, cache, queue, and latency counters.
//
// Caching: requests are bucketed by canon.Canonical (name- and
// order-insensitive, so isomorphic graphs share a bucket) and stored
// under canon.Fingerprint mixed with the endpoint and its
// response-shaping options (strict byte identity — responses embed
// names, so only requests that would produce the very same bytes share
// an entry). A hit is served from the stored bytes with no synthesis
// work; the X-Hlsd-Cache response header says "hit" or "miss" so the
// body itself stays byte-identical either way. Eviction is LRU with
// entry-count and total-byte knobs.
//
// Bounded work: at most Options.Workers requests synthesize at once; up
// to Options.QueueDepth more wait in line, and everything beyond that
// is refused immediately with 503. Every handler runs under
// guard.Recover, and every unit of work runs under a context that is
// cancelled by client disconnect, the per-request deadline, or server
// Close — in-queue requests observe Close within milliseconds.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	hls "repro"
	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/dfgio"
	"repro/internal/guard"
	"repro/internal/pool"
)

// Options configures a Server. The zero value selects the defaults
// noted on each field.
type Options struct {
	// Workers bounds concurrent synthesis work (default: pool.Size(0),
	// the machine's GOMAXPROCS). A /sweep batch occupies one worker and
	// fans out internally on the request parallelism.
	Workers int

	// QueueDepth bounds how many requests may wait for a worker before
	// new arrivals are refused with 503 (default 64).
	QueueDepth int

	// CacheEntries and CacheBytes are the LRU eviction knobs
	// (defaults 1024 entries, 64 MiB). Zero selects the default;
	// negative disables that knob.
	CacheEntries int
	CacheBytes   int64

	// DefaultTimeout bounds each request's synthesis work when the
	// request config carries no timeout of its own (default 60s).
	DefaultTimeout time.Duration

	// BatchWindow is how long the first /sweep request of a batch waits
	// for companions before the batch runs (default 2ms); BatchMax
	// flushes a batch early once it holds that many graphs (default 16).
	BatchWindow time.Duration
	BatchMax    int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = pool.Size(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 1024
	} else if o.CacheEntries < 0 {
		o.CacheEntries = 0 // unbounded
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 64 << 20
	} else if o.CacheBytes < 0 {
		o.CacheBytes = 0 // unbounded
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 16
	}
	return o
}

// ErrQueueFull is returned (as a 503) when a request arrives while
// QueueDepth requests are already waiting for a worker.
var ErrQueueFull = errors.New("serve: request queue full")

// Server is the daemon state: cache, worker slots, sweep batcher, and
// counters. Create with New, mount Handler on an http.Server, and call
// Close to drain.
type Server struct {
	opts    Options
	ctx     context.Context // done when Close is called
	cancel  context.CancelFunc
	sem     chan struct{} // worker slots
	queued  atomic.Int64
	inFlight atomic.Int64
	cache   *cache
	batcher *batcher
	mux     *http.ServeMux

	mu       sync.Mutex
	requests map[string]uint64
	errs     map[string]uint64
	lat      []float64 // latency ring, milliseconds
	latNext  int
	latCount uint64
}

// latRing bounds the latency sample buffer the percentiles are computed
// over; older samples are overwritten.
const latRing = 8192

// New builds a Server with opts resolved to their defaults.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		ctx:      ctx,
		cancel:   cancel,
		sem:      make(chan struct{}, opts.Workers),
		cache:    newCache(opts.CacheEntries, opts.CacheBytes),
		requests: make(map[string]uint64),
		errs:     make(map[string]uint64),
		lat:      make([]float64, 0, latRing),
	}
	s.batcher = newBatcher(s)
	mux := http.NewServeMux()
	mux.Handle("/synthesize", s.endpoint("synthesize", http.MethodPost, s.handleSynthesize))
	mux.Handle("/sweep", s.endpoint("sweep", http.MethodPost, s.handleSweep))
	mux.Handle("/certify", s.endpoint("certify", http.MethodPost, s.handleCertify))
	mux.Handle("/metrics", s.endpoint("metrics", http.MethodGet, s.handleMetrics))
	s.mux = mux
	return s
}

// Handler returns the daemon's HTTP handler, ready to mount on an
// http.Server (or httptest.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Close cancels every queued and in-flight request's context. Requests
// waiting for a worker return immediately with 503; in-flight synthesis
// unwinds at its next cancellation poll. Close is idempotent.
func (s *Server) Close() { s.cancel() }

// --- request plumbing -------------------------------------------------

// httpError pins a status code onto an error at the point where the
// failure is classified (e.g. a malformed request body is a 400 no
// matter what text it carries).
type httpError struct {
	code int
	err  error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(err error) error {
	return &httpError{code: http.StatusBadRequest, err: err}
}

// endpoint wraps a handler with the shared per-request discipline:
// method check, panic recovery (guard.Recover, so a handler bug is a
// 500, not a dead daemon), error-to-status mapping, and request/latency
// accounting.
func (s *Server) endpoint(name, method string, fn func(w http.ResponseWriter, r *http.Request) error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.count(s.requests, name)
		err := func() (err error) {
			defer guard.Recover("serve "+name, &err)
			if r.Method != method {
				return &httpError{code: http.StatusMethodNotAllowed,
					err: fmt.Errorf("method %s not allowed; use %s", r.Method, method)}
			}
			return fn(w, r)
		}()
		if err != nil {
			s.count(s.errs, name)
			writeError(w, err)
		}
		s.observe(time.Since(start))
	})
}

// writeError maps a handler error onto a status code and a JSON body.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	var re *guard.RangeError
	var le *guard.LimitError
	switch {
	case errors.As(err, &he):
		code = he.code
	case errors.As(err, &re), errors.As(err, &le):
		code = http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		code = http.StatusServiceUnavailable // shutdown or client gone
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

// requestCtx derives the context one request's work runs under: child
// of the request context (cancelled on client disconnect), cancelled by
// server Close, and bounded by the default deadline. Request configs
// with their own Timeout tighten this further inside core.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.ctx, cancel)
	ctx, cancelT := context.WithTimeout(ctx, s.opts.DefaultTimeout)
	return ctx, func() { stop(); cancelT(); cancel() }
}

// acquire claims a worker slot, waiting in the bounded queue. It fails
// fast with ErrQueueFull when the queue is at capacity, and returns the
// context error as soon as ctx or the server is done — a queued request
// never outlives Close.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}: // free slot: no queueing at all
		s.inFlight.Add(1)
		return func() { s.inFlight.Add(-1); <-s.sem }, nil
	default:
	}
	if s.queued.Add(1) > int64(s.opts.QueueDepth) {
		s.queued.Add(-1)
		return nil, ErrQueueFull
	}
	defer s.queued.Add(-1)
	release, err = s.acquireSlot(ctx)
	return release, err
}

// acquireSlot is acquire without the queue-depth gate; the sweep
// batcher uses it directly so a batch (already representing admitted
// requests) cannot be refused by the queue its own members fill.
func (s *Server) acquireSlot(ctx context.Context) (func(), error) {
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		return func() { s.inFlight.Add(-1); <-s.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.ctx.Done():
		return nil, s.ctx.Err()
	}
}

func (s *Server) count(m map[string]uint64, name string) {
	s.mu.Lock()
	m[name]++
	s.mu.Unlock()
}

func (s *Server) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.mu.Lock()
	if len(s.lat) < latRing {
		s.lat = append(s.lat, ms)
	} else {
		s.lat[s.latNext] = ms
		s.latNext = (s.latNext + 1) % latRing
	}
	s.latCount++
	s.mu.Unlock()
}

// --- wire types -------------------------------------------------------

// ConfigJSON is the wire form of core.Config. Parallelism is absent by
// design — the server owns its concurrency budget — and Timeout is a
// millisecond count so configs stay plain JSON numbers.
type ConfigJSON struct {
	CS             int            `json:"cs,omitempty"`
	Limits         map[string]int `json:"limits,omitempty"`
	ClockNs        float64        `json:"clock_ns,omitempty"`
	Latency        int            `json:"latency,omitempty"`
	PipelinedOps   []string       `json:"pipelined_ops,omitempty"`
	Style          int            `json:"style,omitempty"`
	Weights        []float64      `json:"weights,omitempty"`
	RegisterInputs bool           `json:"register_inputs,omitempty"`
	Optimize       bool           `json:"optimize,omitempty"`
	Lint           bool           `json:"lint,omitempty"`
	NoTrace        bool           `json:"no_trace,omitempty"`
	TimeoutMs      int            `json:"timeout_ms,omitempty"`
	MaxNodes       int            `json:"max_nodes,omitempty"`
	MaxCSteps      int            `json:"max_csteps,omitempty"`
}

func (c ConfigJSON) toCore() (core.Config, error) {
	if len(c.Weights) > 4 {
		return core.Config{}, badRequest(fmt.Errorf("config: %d weights, want at most 4", len(c.Weights)))
	}
	var w [4]float64
	copy(w[:], c.Weights)
	return core.Config{
		CS:             c.CS,
		Limits:         c.Limits,
		ClockNs:        c.ClockNs,
		Latency:        c.Latency,
		PipelinedOps:   c.PipelinedOps,
		Style:          c.Style,
		Weights:        w,
		RegisterInputs: c.RegisterInputs,
		Optimize:       c.Optimize,
		Lint:           c.Lint,
		NoTrace:        c.NoTrace,
		Timeout:        time.Duration(c.TimeoutMs) * time.Millisecond,
		MaxNodes:       c.MaxNodes,
		MaxCSteps:      c.MaxCSteps,
		Parallelism:    1, // one worker slot = one sequential synthesis
	}, nil
}

// CostJSON is the wire form of rtl.Cost.
type CostJSON struct {
	ALUArea      float64 `json:"alu_area"`
	MuxArea      float64 `json:"mux_area"`
	RegArea      float64 `json:"reg_area"`
	Total        float64 `json:"total"`
	NumALUs      int     `json:"num_alus"`
	NumRegs      int     `json:"num_regs"`
	NumMux       int     `json:"num_mux"`
	NumMuxInputs int     `json:"num_mux_inputs"`
}

func costJSON(c hls.Cost) CostJSON {
	return CostJSON{
		ALUArea: c.ALUArea, MuxArea: c.MuxArea, RegArea: c.RegArea, Total: c.Total,
		NumALUs: c.NumALUs, NumRegs: c.NumRegs, NumMux: c.NumMux, NumMuxInputs: c.NumMuxInputs,
	}
}

// SynthesizeRequest is the /synthesize (and /certify) request body:
// exactly one of Graph (dfgio graph JSON) or Source (behavioral text).
type SynthesizeRequest struct {
	Graph    json.RawMessage `json:"graph,omitempty"`
	Source   string          `json:"source,omitempty"`
	Config   ConfigJSON      `json:"config"`
	Netlist  bool            `json:"netlist,omitempty"`
	Schedule bool            `json:"schedule,omitempty"`
}

// SynthesizeResponse is the /synthesize response body.
type SynthesizeResponse struct {
	Hash        string          `json:"hash"`
	Fingerprint string          `json:"fingerprint"`
	Design      string          `json:"design"`
	CS          int             `json:"cs"`
	Cost        CostJSON        `json:"cost"`
	Netlist     string          `json:"netlist,omitempty"`
	Schedule    json.RawMessage `json:"schedule,omitempty"`
}

// SweepRequest is the /sweep request body: one graph, one range.
// Requests sharing config and range are batched server-side.
type SweepRequest struct {
	Graph  json.RawMessage `json:"graph"`
	CsLo   int             `json:"cs_lo"`
	CsHi   int             `json:"cs_hi"`
	Config ConfigJSON      `json:"config"`
}

// SweepPointJSON is one design point of a /sweep response.
type SweepPointJSON struct {
	CS     int      `json:"cs"`
	Cost   CostJSON `json:"cost"`
	ALUs   string   `json:"alus,omitempty"`
	Pareto bool     `json:"pareto"`
}

// SweepResponse is the /sweep response body.
type SweepResponse struct {
	Hash   string           `json:"hash"`
	Design string           `json:"design"`
	Points []SweepPointJSON `json:"points"`
}

// CertifyResponse is the /certify response body; the certificate is
// lint.Certificate's own JSON form.
type CertifyResponse struct {
	Hash        string          `json:"hash"`
	Certificate json.RawMessage `json:"certificate"`
}

// Metrics is the /metrics response body.
type Metrics struct {
	Requests     map[string]uint64 `json:"requests"`
	Errors       map[string]uint64 `json:"errors"`
	Cache        CacheStats        `json:"cache"`
	InFlight     int64             `json:"in_flight"`
	Queued       int64             `json:"queued"`
	Batches      uint64            `json:"batches"`
	BatchedReqs  uint64            `json:"batched_requests"`
	LatencyP50Ms float64           `json:"latency_p50_ms"`
	LatencyP99Ms float64           `json:"latency_p99_ms"`
	Served       uint64            `json:"served"`
}

// --- request keys -----------------------------------------------------

// decoded is a parsed request payload: the graph plus its cache
// coordinates.
type decoded struct {
	graph  *dfg.Graph
	cfg    core.Config
	bucket canon.Hash // canonical: isomorphic requests collide here
	strict canon.Hash // fingerprint basis for the entry key
}

// decodeRequest parses the graph-or-source payload and computes its
// cache coordinates. For source requests the strict key hashes the
// source text itself (the built graph embeds interned literals whose
// values the graph fingerprint alone would not cover).
func (s *Server) decodeRequest(graphJSON json.RawMessage, source string, cj ConfigJSON) (*decoded, error) {
	cfg, err := cj.toCore()
	if err != nil {
		return nil, err
	}
	var g *dfg.Graph
	var strict canon.Hash
	switch {
	case len(graphJSON) > 0 && source != "":
		return nil, badRequest(errors.New("request carries both graph and source; send one"))
	case len(graphJSON) > 0:
		g, err = dfgio.DecodeGraph(graphJSON)
		if err != nil {
			return nil, badRequest(err)
		}
		strict, err = canon.Fingerprint(g, cfg.Lib, cfg)
		if err != nil {
			return nil, badRequest(err)
		}
	case source != "":
		g, _, err = hls.ParseBehavior(source)
		if err != nil {
			return nil, badRequest(err)
		}
		fp, err := canon.Fingerprint(g, cfg.Lib, cfg)
		if err != nil {
			return nil, badRequest(err)
		}
		strict = mixKey(fp, []byte("source"), []byte(source))
	default:
		return nil, badRequest(errors.New("request carries neither graph nor source"))
	}
	bucket, err := canon.Canonical(g, cfg.Lib, cfg)
	if err != nil {
		return nil, badRequest(err)
	}
	return &decoded{graph: g, cfg: cfg, bucket: bucket, strict: strict}, nil
}

// mixKey derives an entry key from the strict fingerprint plus the
// endpoint- and option-specific parts that shape the response bytes.
func mixKey(fp canon.Hash, parts ...[]byte) canon.Hash {
	h := sha256.New()
	h.Write(fp[:])
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	var out canon.Hash
	h.Sum(out[:0])
	return out
}

func u64bytes(vs ...uint64) []byte {
	b := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		b = binary.BigEndian.AppendUint64(b, v)
	}
	return b
}

// --- handlers ---------------------------------------------------------

// serveCached answers from the cache when possible; on a miss it runs
// produce (under a worker slot), stores the exact bytes written, and
// answers with them. The X-Hlsd-Cache header carries the verdict so hit
// and miss bodies stay byte-identical.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key cacheKey,
	produce func(ctx context.Context) (any, error)) error {
	if body, ok := s.cache.get(key); ok {
		w.Header().Set("X-Hlsd-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		return nil
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return err
	}
	resp, err := func() (any, error) {
		defer release()
		return produce(ctx)
	}()
	if err != nil {
		return err
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	s.cache.put(key, body)
	w.Header().Set("X-Hlsd-Cache", "miss")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	return nil
}

func decodeBody[T any](r *http.Request) (*T, error) {
	var req T
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest(fmt.Errorf("request body: %w", err))
	}
	return &req, nil
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) error {
	req, err := decodeBody[SynthesizeRequest](r)
	if err != nil {
		return err
	}
	d, err := s.decodeRequest(req.Graph, req.Source, req.Config)
	if err != nil {
		return err
	}
	key := cacheKey{
		bucket: d.bucket,
		entry:  mixKey(d.strict, []byte("synthesize"), u64bytes(b2u(req.Netlist), b2u(req.Schedule))),
	}
	return s.serveCached(w, r, key, func(ctx context.Context) (any, error) {
		design, err := hls.SynthesizeCtx(ctx, d.graph, d.cfg)
		if err != nil {
			return nil, err
		}
		resp := &SynthesizeResponse{
			Hash:        d.bucket.String(),
			Fingerprint: d.strict.String(),
			Design:      design.Graph.Name,
			CS:          design.Schedule.CS,
			Cost:        costJSON(design.Cost),
		}
		if req.Netlist {
			nl, err := design.Netlist()
			if err != nil {
				return nil, err
			}
			resp.Netlist = nl
		}
		if req.Schedule {
			sj, err := dfgio.EncodeSchedule(design.Schedule)
			if err != nil {
				return nil, err
			}
			resp.Schedule = sj
		}
		return resp, nil
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) error {
	req, err := decodeBody[SweepRequest](r)
	if err != nil {
		return err
	}
	d, err := s.decodeRequest(req.Graph, "", req.Config)
	if err != nil {
		return err
	}
	if req.CsLo < 1 || req.CsLo > req.CsHi {
		return badRequest(&guard.RangeError{Lo: req.CsLo, Hi: req.CsHi})
	}
	// Infeasible ranges are rejected before batching, so one bad graph
	// fails alone instead of poisoning the whole fan-out.
	if cp := d.graph.CriticalPathCycles(); cp > req.CsHi {
		return badRequest(&guard.RangeError{
			Lo: req.CsLo, Hi: req.CsHi, CriticalPath: cp, Graph: d.graph.Name,
		})
	}
	key := cacheKey{
		bucket: d.bucket,
		entry:  mixKey(d.strict, []byte("sweep"), u64bytes(uint64(req.CsLo), uint64(req.CsHi))),
	}
	if body, ok := s.cache.get(key); ok {
		w.Header().Set("X-Hlsd-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		return nil
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	points, err := s.batcher.submit(ctx, d, req.CsLo, req.CsHi, req.Config)
	if err != nil {
		return err
	}
	resp := &SweepResponse{
		Hash:   d.bucket.String(),
		Design: d.graph.Name,
		Points: make([]SweepPointJSON, len(points)),
	}
	for i, p := range points {
		resp.Points[i] = SweepPointJSON{CS: p.CS, Cost: costJSON(p.Cost), ALUs: p.ALUs, Pareto: p.Pareto}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	s.cache.put(key, body)
	w.Header().Set("X-Hlsd-Cache", "miss")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	return nil
}

func (s *Server) handleCertify(w http.ResponseWriter, r *http.Request) error {
	req, err := decodeBody[SynthesizeRequest](r)
	if err != nil {
		return err
	}
	d, err := s.decodeRequest(req.Graph, req.Source, req.Config)
	if err != nil {
		return err
	}
	key := cacheKey{bucket: d.bucket, entry: mixKey(d.strict, []byte("certify"))}
	return s.serveCached(w, r, key, func(ctx context.Context) (any, error) {
		design, err := hls.SynthesizeCtx(ctx, d.graph, d.cfg)
		if err != nil {
			return nil, err
		}
		cert, err := hls.CertifyCtx(ctx, design.LintUnit())
		if err != nil {
			return nil, err
		}
		cj, err := json.Marshal(cert)
		if err != nil {
			return nil, err
		}
		return &CertifyResponse{Hash: d.bucket.String(), Certificate: cj}, nil
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, s.Metrics())
	return nil
}

// Metrics snapshots the server counters.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	reqs := make(map[string]uint64, len(s.requests))
	for k, v := range s.requests {
		reqs[k] = v
	}
	errs := make(map[string]uint64, len(s.errs))
	for k, v := range s.errs {
		errs[k] = v
	}
	lat := append([]float64(nil), s.lat...)
	served := s.latCount
	s.mu.Unlock()
	sort.Float64s(lat)
	m := Metrics{
		Requests:    reqs,
		Errors:      errs,
		Cache:       s.cache.stats(),
		InFlight:    s.inFlight.Load(),
		Queued:      s.queued.Load(),
		Batches:     s.batcher.batches.Load(),
		BatchedReqs: s.batcher.joined.Load(),
		Served:      served,
	}
	if len(lat) > 0 {
		m.LatencyP50Ms = percentile(lat, 50)
		m.LatencyP99Ms = percentile(lat, 99)
	}
	return m
}

// percentile reads the p-th percentile from an ascending sample slice
// (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}
