package symb

import (
	"strings"
	"testing"

	"repro/internal/op"
)

func TestHashConsing(t *testing.T) {
	b := NewBuilder()
	x, y := b.Var("x"), b.Var("y")
	if x != b.Var("x") {
		t.Fatal("variable leaf not interned")
	}
	if b.Const(7) != b.Const(7) {
		t.Fatal("constant leaf not interned")
	}
	e1 := b.Apply(op.Sub, x, y)
	e2 := b.Apply(op.Sub, x, y)
	if e1 != e2 {
		t.Fatal("structurally equal expressions are distinct pointers")
	}
	if e3 := b.Apply(op.Sub, y, x); e3 == e1 {
		t.Fatal("non-commutative operands were conflated")
	}
}

func TestCommutativeSorting(t *testing.T) {
	b := NewBuilder()
	x, y := b.Var("x"), b.Var("y")
	for _, k := range []op.Kind{op.Add, op.Mul, op.And, op.Or, op.Xor, op.Eq, op.Ne} {
		if b.Apply(k, x, y) != b.Apply(k, y, x) {
			t.Errorf("%s: operand order not canonicalized", k)
		}
	}
	if b.Apply(op.Lt, x, y) == b.Apply(op.Lt, y, x) {
		t.Error("< must not commute")
	}
}

func TestAssociativityFlattening(t *testing.T) {
	b := NewBuilder()
	x, y, z := b.Var("x"), b.Var("y"), b.Var("z")
	l := b.Apply(op.Add, b.Apply(op.Add, x, y), z)
	r := b.Apply(op.Add, x, b.Apply(op.Add, y, z))
	if l != r {
		t.Fatalf("(x+y)+z != x+(y+z): %s vs %s", l, r)
	}
	if len(l.Args) != 3 {
		t.Fatalf("flattened sum has %d args, want 3: %s", len(l.Args), l)
	}
	m := b.Apply(op.Mul, b.Apply(op.Mul, z, y), x)
	if m != b.Apply(op.Mul, x, b.Apply(op.Mul, y, z)) {
		t.Fatal("n-ary * not canonical across association/commutation")
	}
	// Subtraction must NOT flatten.
	s := b.Apply(op.Sub, b.Apply(op.Sub, x, y), z)
	if s == b.Apply(op.Sub, x, b.Apply(op.Sub, y, z)) {
		t.Fatal("(x-y)-z conflated with x-(y-z)")
	}
}

func TestConstantFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x")
	if e := b.Apply(op.Add, b.Const(2), b.Const(3)); !e.IsConst || e.Val != 5 {
		t.Fatalf("2+3 = %s", e)
	}
	if e := b.Apply(op.Div, b.Const(7), b.Const(0)); !e.IsConst || e.Val != 0 {
		t.Fatalf("7/0 = %s, want the simulator's defined-result 0", e)
	}
	// Constants merge across a flattened sum; the neutral element vanishes.
	e := b.Apply(op.Add, b.Const(2), b.Apply(op.Add, x, b.Const(-2)))
	if e != x {
		t.Fatalf("2+(x+-2) = %s, want x", e)
	}
	if e := b.Apply(op.Mul, x, b.Const(1)); e != x {
		t.Fatalf("x*1 = %s, want x", e)
	}
	if e := b.Apply(op.Mul, b.Const(0), x); e.IsConst {
		t.Fatalf("0*x folded to a constant %s; only the neutral element may be elided", e)
	}
}

func TestMovIsIdentity(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x")
	if b.Apply(op.Mov, x) != x {
		t.Fatal("mov(x) != x")
	}
	e := b.Apply(op.Neg, b.Apply(op.Mov, x))
	if e != b.Apply(op.Neg, x) {
		t.Fatal("mov not transparent under composition")
	}
}

func TestEvalMatchesOpSemantics(t *testing.T) {
	b := NewBuilder()
	x, y := b.Var("x"), b.Var("y")
	env := map[string]int64{"x": -7, "y": 3}
	for _, k := range op.Kinds() {
		var e *Expr
		if k.Arity() == 1 {
			e = b.Apply(k, x)
		} else {
			e = b.Apply(k, x, y)
		}
		want := k.Eval(-7, 3)
		if k.Arity() == 1 {
			want = k.Eval(-7, 0)
		}
		if got := e.Eval(env); got != want {
			t.Errorf("%s: Eval = %d, op.Eval = %d", k, got, want)
		}
	}
	// n-ary fold
	e := b.Apply(op.Add, x, y, b.Apply(op.Mul, x, y))
	if got := e.Eval(env); got != -7+3+(-7*3) {
		t.Errorf("n-ary eval = %d", got)
	}
}

func TestVarsAndDiff(t *testing.T) {
	b := NewBuilder()
	x, y, z := b.Var("x"), b.Var("y"), b.Var("z")
	a := b.Apply(op.Sub, b.Apply(op.Add, x, y), z)
	c := b.Apply(op.Sub, b.Apply(op.Add, x, x), z)
	vars := map[string]bool{}
	a.Vars(vars)
	if len(vars) != 3 || !vars["x"] || !vars["y"] || !vars["z"] {
		t.Fatalf("Vars = %v", vars)
	}
	if d := Diff(a, a); d != "" {
		t.Fatalf("Diff(a,a) = %q", d)
	}
	d := Diff(a, c)
	if !strings.Contains(d, "-[0]") || !strings.Contains(d, "reference") {
		t.Fatalf("Diff did not localize the divergence: %q", d)
	}
}

func TestRenderDepthCap(t *testing.T) {
	b := NewBuilder()
	e := b.Var("x")
	for i := 0; i < 40; i++ {
		e = b.Apply(op.Sub, e, b.Var("y"))
	}
	s := e.String()
	if !strings.Contains(s, "…") {
		t.Fatalf("deep expression rendered without a depth cap: %d bytes", len(s))
	}
}
