// Package symb is a hash-consed word-level symbolic-expression engine:
// the substrate of the translation-validation pass (internal/lint's
// equiv analyzer). Expressions are canonical DAGs interned in a Builder,
// so two structurally equal expressions are the same pointer and an
// equivalence proof between two synthesis artifacts reduces to one
// pointer comparison of their root expressions.
//
// Canonicalization applies exactly the normalization every artifact
// layer of the flow is entitled to: constant folding through the shared
// op.Kind.Eval semantics (int64 two's-complement, so + and * are
// associative and commutative under wraparound), associativity
// flattening of + and * into n-ary nodes, commutative-operand sorting
// by intern id, and identity elision of the neutral element (x+0, x*1).
// Mov is the identity function and vanishes on construction. No other
// algebraic rules (distribution, double negation, x-x=0, ...) are
// applied: every artifact is derived from the same data-flow graph, so
// the only structural freedom the synthesis layers actually exercise is
// operand commutation (the §5.6 multiplexer-input optimization), and a
// deliberately small rule set keeps the normalization trivially
// semantics-preserving — a proof can never be manufactured by an
// unsound rewrite.
package symb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/op"
)

// Expr is one canonical expression node. Exprs are created only through
// a Builder and are immutable afterwards; two Exprs from the same
// Builder are semantically equal under the package's normalization iff
// they are the same pointer.
type Expr struct {
	// Kind is the operator of an interior node; op.Invalid for leaves.
	Kind op.Kind

	// Var is the free-variable name; non-empty iff the node is a
	// variable leaf.
	Var string

	// Val is the constant value, meaningful iff IsConst.
	Val     int64
	IsConst bool

	// Args are the operand expressions of an interior node. For + and *
	// the list is n-ary (flattened), sorted by intern id, with at most
	// one constant; for other commutative operators it is a sorted
	// pair.
	Args []*Expr

	id int // builder-local intern id; ids order operands deterministically
}

// Leaf reports whether the expression is a variable or constant.
func (e *Expr) Leaf() bool { return len(e.Args) == 0 }

// Builder interns expressions. The zero value is not ready; use
// NewBuilder. A Builder is not safe for concurrent use.
type Builder struct {
	nodes map[string]*Expr
	next  int
}

// NewBuilder returns an empty intern table.
func NewBuilder() *Builder {
	return &Builder{nodes: make(map[string]*Expr)}
}

// Len reports how many distinct expressions have been interned.
func (b *Builder) Len() int { return len(b.nodes) }

func (b *Builder) intern(key string, mk func() *Expr) *Expr {
	if e, ok := b.nodes[key]; ok {
		return e
	}
	e := mk()
	e.id = b.next
	b.next++
	b.nodes[key] = e
	return e
}

// Var returns the canonical leaf for the named free variable.
func (b *Builder) Var(name string) *Expr {
	return b.intern("v\x00"+name, func() *Expr { return &Expr{Var: name} })
}

// Const returns the canonical leaf for the constant v.
func (b *Builder) Const(v int64) *Expr {
	return b.intern("c\x00"+strconv.FormatInt(v, 10), func() *Expr {
		return &Expr{Val: v, IsConst: true}
	})
}

// opKey builds the intern key of an interior node from its operator and
// the ids of its (already canonical) operands.
func opKey(k op.Kind, args []*Expr) string {
	var sb strings.Builder
	sb.WriteString("o\x00")
	sb.WriteString(strconv.Itoa(int(k)))
	for _, a := range args {
		sb.WriteByte('\x00')
		sb.WriteString(strconv.Itoa(a.id))
	}
	return sb.String()
}

// identity returns the neutral element of an associative operator.
func identity(k op.Kind) int64 {
	if k == op.Mul {
		return 1
	}
	return 0 // Add
}

// Apply builds the canonical expression for operator k over args. The
// operand list is first normalized to the operator's arity the way the
// concrete evaluators do it (unary operators ignore a second operand; a
// binary operator missing one reads the zero value), so the symbolic
// and concrete semantics agree on malformed artifacts too.
func (b *Builder) Apply(k op.Kind, args ...*Expr) *Expr {
	switch k.Arity() {
	case 1:
		if len(args) == 0 {
			args = []*Expr{b.Const(0)}
		}
		args = args[:1]
	case 2:
		for len(args) < 2 {
			args = append(args, b.Const(0))
		}
		if len(args) > 2 && k != op.Add && k != op.Mul {
			args = args[:2] // only the associative operators are n-ary
		}
	}
	if k == op.Mov {
		return args[0] // identity function
	}
	if k == op.Add || k == op.Mul {
		return b.assoc(k, args)
	}
	allConst := true
	for _, a := range args {
		if !a.IsConst {
			allConst = false
			break
		}
	}
	if allConst {
		if len(args) == 1 {
			return b.Const(k.Eval(args[0].Val, 0))
		}
		return b.Const(k.Eval(args[0].Val, args[1].Val))
	}
	if k.Commutative() && len(args) == 2 && args[1].id < args[0].id {
		args = []*Expr{args[1], args[0]}
	}
	sorted := append([]*Expr(nil), args...)
	return b.intern(opKey(k, sorted), func() *Expr {
		return &Expr{Kind: k, Args: sorted}
	})
}

// assoc canonicalizes an n-ary + or *: flatten nested nodes of the same
// operator, fold every constant operand into one (sound under int64
// wraparound), drop the fold when it is the neutral element, and sort
// the remaining operands by intern id.
func (b *Builder) assoc(k op.Kind, args []*Expr) *Expr {
	flat := make([]*Expr, 0, len(args))
	c := identity(k)
	hasConst := false
	for _, a := range args {
		kids := []*Expr{a}
		if a.Kind == k {
			kids = a.Args // already flat and constant-free (or one const)
		}
		for _, kid := range kids {
			if kid.IsConst {
				c = k.Eval(c, kid.Val)
				hasConst = true
			} else {
				flat = append(flat, kid)
			}
		}
	}
	if len(flat) == 0 {
		return b.Const(c)
	}
	if hasConst && c != identity(k) {
		flat = append(flat, b.Const(c))
	}
	if len(flat) == 1 {
		return flat[0]
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].id < flat[j].id })
	return b.intern(opKey(k, flat), func() *Expr {
		return &Expr{Kind: k, Args: flat}
	})
}

// Eval computes the expression's concrete value under an assignment of
// the free variables (missing variables read 0). Evaluation is
// memoized over the DAG, so shared subexpressions are computed once.
func (e *Expr) Eval(env map[string]int64) int64 {
	memo := make(map[*Expr]int64)
	var rec func(x *Expr) int64
	rec = func(x *Expr) int64 {
		if v, ok := memo[x]; ok {
			return v
		}
		var v int64
		switch {
		case x.IsConst:
			v = x.Val
		case x.Var != "":
			v = env[x.Var]
		case x.Kind == op.Add || x.Kind == op.Mul:
			v = rec(x.Args[0])
			for _, a := range x.Args[1:] {
				v = x.Kind.Eval(v, rec(a))
			}
		case len(x.Args) == 1:
			v = x.Kind.Eval(rec(x.Args[0]), 0)
		default:
			v = x.Kind.Eval(rec(x.Args[0]), rec(x.Args[1]))
		}
		memo[x] = v
		return v
	}
	return rec(e)
}

// Vars adds every free variable of the expression to dst.
func (e *Expr) Vars(dst map[string]bool) {
	seen := make(map[*Expr]bool)
	var rec func(x *Expr)
	rec = func(x *Expr) {
		if seen[x] {
			return
		}
		seen[x] = true
		if x.Var != "" {
			dst[x.Var] = true
		}
		for _, a := range x.Args {
			rec(a)
		}
	}
	rec(e)
}

// maxRenderDepth bounds String's recursion so a diagnostic carrying a
// deep expression stays readable; deeper structure renders as "…".
const maxRenderDepth = 8

// String renders the expression as a depth-capped S-expression, e.g.
// "(+ x y (* 3 dx))".
func (e *Expr) String() string {
	var sb strings.Builder
	e.render(&sb, maxRenderDepth)
	return sb.String()
}

func (e *Expr) render(sb *strings.Builder, depth int) {
	switch {
	case e.IsConst:
		sb.WriteString(strconv.FormatInt(e.Val, 10))
	case e.Var != "":
		sb.WriteString(e.Var)
	case depth <= 0:
		sb.WriteString("…")
	default:
		sb.WriteByte('(')
		sb.WriteString(e.Kind.String())
		for _, a := range e.Args {
			sb.WriteByte(' ')
			a.render(sb, depth-1)
		}
		sb.WriteByte(')')
	}
}

// Diff localizes the structural difference between two expressions from
// the same Builder: it descends as long as the difference is confined
// to exactly one operand position and then renders both sides at the
// divergence point. Calling Diff on equal expressions returns "".
func Diff(a, b *Expr) string {
	if a == b {
		return ""
	}
	var path []string
	for a.Kind == b.Kind && !a.Leaf() && !b.Leaf() && len(a.Args) == len(b.Args) {
		differing := -1
		for i := range a.Args {
			if a.Args[i] != b.Args[i] {
				if differing >= 0 {
					differing = -1 // more than one operand differs: stop here
					break
				}
				differing = i
			}
		}
		if differing < 0 {
			break
		}
		path = append(path, fmt.Sprintf("%s[%d]", a.Kind, differing))
		a, b = a.Args[differing], b.Args[differing]
	}
	at := "root"
	if len(path) > 0 {
		at = strings.Join(path, ".")
	}
	return fmt.Sprintf("at %s: reference %s, candidate %s", at, a, b)
}
