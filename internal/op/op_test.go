package op

import (
	"testing"
	"testing/quick"
)

func TestStringRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := Parse(k.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("Parse(%q) = %v, want %v", k.String(), got, k)
		}
	}
}

func TestParseUnknown(t *testing.T) {
	for _, s := range []string{"", "?", "plus", "**", "invalid"} {
		if k, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) = %v, want error", s, k)
		}
	}
}

func TestValid(t *testing.T) {
	if Invalid.Valid() {
		t.Error("Invalid.Valid() = true")
	}
	if Kind(-1).Valid() || Kind(999).Valid() {
		t.Error("out-of-range kinds reported valid")
	}
	for _, k := range Kinds() {
		if !k.Valid() {
			t.Errorf("%v.Valid() = false", k)
		}
	}
}

func TestInvalidString(t *testing.T) {
	if got := Kind(999).String(); got != "Kind(999)" {
		t.Errorf("Kind(999).String() = %q", got)
	}
	if got := Invalid.String(); got != "invalid" {
		t.Errorf("Invalid.String() = %q", got)
	}
}

func TestNumKinds(t *testing.T) {
	if got := len(Kinds()); got != NumKinds() {
		t.Errorf("len(Kinds()) = %d, NumKinds() = %d", got, NumKinds())
	}
}

func TestArity(t *testing.T) {
	unary := map[Kind]bool{Not: true, Neg: true, Mov: true}
	for _, k := range Kinds() {
		want := 2
		if unary[k] {
			want = 1
		}
		if got := k.Arity(); got != want {
			t.Errorf("%v.Arity() = %d, want %d", k, got, want)
		}
	}
	if Invalid.Arity() != 0 {
		t.Error("Invalid.Arity() != 0")
	}
}

func TestCommutativeEval(t *testing.T) {
	// Property: for every kind flagged commutative, Eval(a,b) == Eval(b,a).
	f := func(a, b int64) bool {
		for _, k := range Kinds() {
			if k.Commutative() && k.Eval(a, b) != k.Eval(b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNonCommutativeWitness(t *testing.T) {
	// Each binary non-commutative kind must have a witness pair proving it
	// is genuinely order-sensitive (guards against over-conservative flags).
	for _, k := range Kinds() {
		if k.Commutative() || k.Arity() != 2 {
			continue
		}
		found := false
		pairs := [][2]int64{{1, 2}, {5, 3}, {7, -2}, {0, 4}, {8, 1}}
		for _, p := range pairs {
			if k.Eval(p[0], p[1]) != k.Eval(p[1], p[0]) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%v flagged non-commutative but no witness found", k)
		}
	}
}

func TestEvalBasics(t *testing.T) {
	cases := []struct {
		k    Kind
		a, b int64
		want int64
	}{
		{Add, 3, 4, 7},
		{Sub, 3, 4, -1},
		{Mul, 3, 4, 12},
		{Div, 12, 4, 3},
		{Div, 7, 0, 0}, // defined-result convention
		{And, 6, 3, 2},
		{Or, 6, 3, 7},
		{Xor, 6, 3, 5},
		{Not, 0, 0, -1},
		{Lt, 3, 4, 1},
		{Lt, 4, 3, 0},
		{Gt, 4, 3, 1},
		{Le, 4, 4, 1},
		{Ge, 3, 4, 0},
		{Eq, 5, 5, 1},
		{Ne, 5, 5, 0},
		{Shl, 1, 4, 16},
		{Shr, 16, 4, 1},
		{Neg, 9, 0, -9},
		{Mov, 42, 0, 42},
	}
	for _, c := range cases {
		if got := c.k.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v.Eval(%d,%d) = %d, want %d", c.k, c.a, c.b, got, c.want)
		}
	}
	if Invalid.Eval(1, 2) != 0 {
		t.Error("Invalid.Eval != 0")
	}
}

func TestShiftMasksCount(t *testing.T) {
	// Shift counts are masked to 6 bits so huge counts cannot panic.
	if got := Shl.Eval(1, 64); got != 1 {
		t.Errorf("Shl.Eval(1,64) = %d, want 1 (count masked)", got)
	}
	if got := Shr.Eval(4, 66); got != 1 {
		t.Errorf("Shr.Eval(4,66) = %d, want 1", got)
	}
}

func TestDelaysPositive(t *testing.T) {
	for _, k := range Kinds() {
		if k.DefaultDelayNs() <= 0 {
			t.Errorf("%v.DefaultDelayNs() = %v, want > 0", k, k.DefaultDelayNs())
		}
		if k.DefaultCycles() != 1 {
			t.Errorf("%v.DefaultCycles() = %d, want 1", k, k.DefaultCycles())
		}
	}
}

func TestDelayOrdering(t *testing.T) {
	// The chaining extension relies on mul/div being the slowest operators
	// and pure logic the fastest.
	if !(Mul.DefaultDelayNs() > Add.DefaultDelayNs()) {
		t.Error("mul should be slower than add")
	}
	if !(Div.DefaultDelayNs() >= Mul.DefaultDelayNs()) {
		t.Error("div should be at least as slow as mul")
	}
	if !(Add.DefaultDelayNs() > And.DefaultDelayNs()) {
		t.Error("add should be slower than and")
	}
}
