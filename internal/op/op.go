// Package op defines the operation model shared by every layer of the
// synthesis system: the kinds of operations a data-flow graph may contain,
// their algebraic properties (commutativity, arity), and their default
// timing (execution cycles and combinational delay used for chaining).
package op

import "fmt"

// Kind identifies an operation type. The zero value is Invalid.
type Kind int

// The operation kinds supported by the synthesis system. They cover the
// operator sets of the six literature examples reproduced in the paper's
// evaluation (§6) plus the comparison/logic operators used by conditional
// behaviors.
const (
	Invalid Kind = iota
	Add          // +
	Sub          // -
	Mul          // *
	Div          // /
	And          // &
	Or           // |
	Xor          // ^
	Not          // ~ (unary)
	Lt           // <
	Gt           // >
	Le           // <=
	Ge           // >=
	Eq           // ==
	Ne           // !=
	Shl          // <<
	Shr          // >>
	Neg          // unary minus
	Mov          // register-to-register move / identity
	numKinds
)

// NumKinds reports how many distinct valid kinds exist (excluding Invalid).
func NumKinds() int { return int(numKinds) - 1 }

var names = [...]string{
	Invalid: "invalid",
	Add:     "+",
	Sub:     "-",
	Mul:     "*",
	Div:     "/",
	And:     "&",
	Or:      "|",
	Xor:     "^",
	Not:     "~",
	Lt:      "<",
	Gt:      ">",
	Le:      "<=",
	Ge:      ">=",
	Eq:      "==",
	Ne:      "!=",
	Shl:     "<<",
	Shr:     ">>",
	Neg:     "neg",
	Mov:     "mov",
}

// String returns the operator symbol (e.g. "+", "*", "<").
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return names[k]
}

// Valid reports whether k names a real operation kind.
func (k Kind) Valid() bool { return k > Invalid && k < numKinds }

// Commutative reports whether the operation's two inputs may be swapped
// without changing its result. MFSA's multiplexer-input optimization (§5.6)
// exploits this freedom when constructing the L1/L2 input lists.
func (k Kind) Commutative() bool {
	switch k {
	case Add, Mul, And, Or, Xor, Eq, Ne:
		return true
	}
	return false
}

// Arity returns the number of data inputs the operation consumes (1 or 2).
func (k Kind) Arity() int {
	switch k {
	case Not, Neg, Mov:
		return 1
	case Invalid:
		return 0
	}
	return 2
}

// Kinds returns all valid kinds in a fixed order.
func Kinds() []Kind {
	ks := make([]Kind, 0, NumKinds())
	for k := Add; k < numKinds; k++ {
		ks = append(ks, k)
	}
	return ks
}

// Parse maps an operator symbol back to its Kind. It returns Invalid and an
// error for unknown symbols.
func Parse(s string) (Kind, error) {
	for k := Add; k < numKinds; k++ {
		if names[k] == s {
			return k, nil
		}
	}
	return Invalid, fmt.Errorf("op: unknown operator %q", s)
}

// DefaultCycles returns the default number of control steps the operation
// occupies. Multiplication and division default to 1 here; benchmarks that
// model 2-cycle multipliers (Table 1, examples #4–#6) override per-node
// cycle counts explicitly.
func (k Kind) DefaultCycles() int { return 1 }

// DefaultDelayNs returns a nominal combinational propagation delay in
// nanoseconds, used by the chaining extension (§5.4) to decide how many
// data-dependent operations fit in one control step of clock period T.
// The absolute values are synthetic; only their relative magnitudes matter
// (multiply/divide slowest, logic fastest), mirroring a late-80s standard
// cell library.
func (k Kind) DefaultDelayNs() float64 {
	switch k {
	case Mul:
		return 80
	case Div:
		return 100
	case Add, Sub, Neg:
		return 40
	case Lt, Gt, Le, Ge, Eq, Ne:
		return 35
	case Shl, Shr:
		return 20
	case And, Or, Xor, Not:
		return 10
	case Mov:
		return 5
	}
	return 0
}

// Eval computes the operation on concrete signed integer operands; the
// datapath simulator (internal/sim) and the DFG reference evaluator use it
// to cross-check synthesized designs. Comparison operators yield 0 or 1.
// Division by zero yields 0, matching the simulator's defined-result
// convention (real hardware would flag it; the cross-check only needs both
// sides to agree).
func (k Kind) Eval(a, b int64) int64 {
	switch k {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return 0
		}
		return a / b
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Not:
		return ^a
	case Lt:
		return b2i(a < b)
	case Gt:
		return b2i(a > b)
	case Le:
		return b2i(a <= b)
	case Ge:
		return b2i(a >= b)
	case Eq:
		return b2i(a == b)
	case Ne:
		return b2i(a != b)
	case Shl:
		return a << uint(b&63)
	case Shr:
		return a >> uint(b&63)
	case Neg:
		return -a
	case Mov:
		return a
	}
	return 0
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}
