// Package ctrl generates the control path for a synthesized design: a
// Moore FSM with one state per control step that drives the datapath's
// multiplexer selects, ALU function codes and register write enables.
// The paper's flow (behavioral synthesis = data path synthesis + control
// path design, §1) needs this step to make the RTL structure executable;
// internal/sim runs designs through it and internal/emit prints it.
package ctrl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dfg"
	"repro/internal/op"
	"repro/internal/rtl"
	"repro/internal/sched"
)

// Action is one datapath operation issued in a state: the ALU that
// executes it, the function code, and the two multiplexer selects
// (indices into the ALU's L1/L2 input lists; -1 for an unused port).
type Action struct {
	Node    dfg.NodeID
	Name    string // node name, for rendering
	ALU     string
	Func    op.Kind
	Mux1Sel int
	Mux2Sel int
	Src1    string // signal selected on port 1 ("" if unused)
	Src2    string

	// Guards lists the conditional branches the operation belongs to
	// (§5.1): the controller commits the action's result only when every
	// guard's condition signal selects its branch. Unconditional actions
	// have no guards.
	Guards []dfg.CondTag
}

// Guarded reports whether the action's commit depends on branch
// conditions.
func (a Action) Guarded() bool { return len(a.Guards) > 0 }

// RegWrite latches a signal into a register at the end of a state.
type RegWrite struct {
	Reg    int
	Signal string
}

// State is one FSM state (control step).
type State struct {
	Step    int
	Actions []Action
	Writes  []RegWrite
}

// Controller is the complete control path.
type Controller struct {
	Design string
	States []State

	// Latency is the functional-pipelining initiation interval: when
	// non-zero the FSM restarts every Latency steps instead of after the
	// last state.
	Latency int
}

// Build derives the controller from a bound design. The datapath must
// contain a binding for every node of g that the schedule places, and
// its register packing must already be assigned.
func Build(g *dfg.Graph, s *sched.Schedule, dp *rtl.Datapath) (*Controller, error) {
	c := &Controller{Design: g.Name, Latency: s.Latency}
	states := make([]State, s.CS)
	for i := range states {
		states[i].Step = i + 1
	}
	// One pass over the datapath instead of a FindBinding scan per node
	// (quadratic on large designs), plus lazily built per-ALU signal →
	// mux-select maps replacing the per-action list scans.
	byNode := make(map[dfg.NodeID]*rtl.ALU)
	binds := make(map[dfg.NodeID]*rtl.Binding)
	for _, a := range dp.ALUs {
		for i := range a.Ops {
			byNode[a.Ops[i].Node] = a
			binds[a.Ops[i].Node] = &a.Ops[i]
		}
	}
	sels := make(map[*rtl.ALU]*muxSelects)
	for _, n := range g.Nodes() {
		p, ok := s.Placements[n.ID]
		if !ok {
			return nil, fmt.Errorf("ctrl: node %q unscheduled", n.Name)
		}
		a, ok := byNode[n.ID]
		if !ok {
			return nil, fmt.Errorf("ctrl: node %q unbound", n.Name)
		}
		sel := sels[a]
		if sel == nil {
			sel = newMuxSelects(a)
			sels[a] = sel
		}
		act, err := action(n, a, binds[n.ID], sel)
		if err != nil {
			return nil, err
		}
		states[p.Step-1].Actions = append(states[p.Step-1].Actions, act)
	}
	for r, grp := range dp.Registers {
		for _, iv := range grp {
			if iv.Birth < 1 || iv.Birth > s.CS {
				continue // input captured before step 1 (or held past the end)
			}
			states[iv.Birth-1].Writes = append(states[iv.Birth-1].Writes,
				RegWrite{Reg: r, Signal: iv.Name})
		}
	}
	for i := range states {
		sort.Slice(states[i].Actions, func(a, b int) bool {
			return states[i].Actions[a].Name < states[i].Actions[b].Name
		})
		sort.Slice(states[i].Writes, func(a, b int) bool {
			wa, wb := states[i].Writes[a], states[i].Writes[b]
			if wa.Reg != wb.Reg {
				return wa.Reg < wb.Reg
			}
			return wa.Signal < wb.Signal
		})
	}
	c.States = states
	return c, nil
}

// muxSelects maps an ALU's input signals to their L1/L2 positions.
type muxSelects struct {
	l1, l2 map[string]int
}

func newMuxSelects(a *rtl.ALU) *muxSelects {
	m := &muxSelects{
		l1: make(map[string]int, len(a.L1)),
		l2: make(map[string]int, len(a.L2)),
	}
	for i, s := range a.L1 {
		m.l1[s] = i
	}
	for i, s := range a.L2 {
		m.l2[s] = i
	}
	return m
}

func (m *muxSelects) index1(s string) int {
	if i, ok := m.l1[s]; ok {
		return i
	}
	return -1
}

func (m *muxSelects) index2(s string) int {
	if i, ok := m.l2[s]; ok {
		return i
	}
	return -1
}

func action(n *dfg.Node, a *rtl.ALU, bind *rtl.Binding, sel *muxSelects) (Action, error) {
	act := Action{
		Node: n.ID, Name: n.Name, ALU: a.Name, Func: n.Op,
		Mux1Sel: -1, Mux2Sel: -1,
		Guards: append([]dfg.CondTag(nil), n.Excl...),
	}
	if bind == nil {
		return act, fmt.Errorf("ctrl: node %q missing from ALU %s op list", n.Name, a.Name)
	}
	src1, src2 := "", ""
	switch {
	case len(n.Args) == 1:
		src1 = n.Args[0]
	case bind.Swapped:
		src1, src2 = n.Args[1], n.Args[0]
	default:
		src1, src2 = n.Args[0], n.Args[1]
	}
	if src1 != "" {
		act.Mux1Sel = sel.index1(src1)
		act.Src1 = src1
		if act.Mux1Sel < 0 {
			return act, fmt.Errorf("ctrl: %q: signal %q missing from %s.L1", n.Name, src1, a.Name)
		}
	}
	if src2 != "" {
		act.Mux2Sel = sel.index2(src2)
		act.Src2 = src2
		if act.Mux2Sel < 0 {
			return act, fmt.Errorf("ctrl: %q: signal %q missing from %s.L2", n.Name, src2, a.Name)
		}
	}
	return act, nil
}

// ActionFor returns the action issuing node id and the 1-based position
// of the state that issues it, or ok=false when no state does.
func (c *Controller) ActionFor(id dfg.NodeID) (Action, int, bool) {
	for i, st := range c.States {
		for _, act := range st.Actions {
			if act.Node == id {
				return act, i + 1, true
			}
		}
	}
	return Action{}, 0, false
}

// NextState returns the state index following i, honoring functional
// pipelining restarts and the steady loop back to state 0.
func (c *Controller) NextState(i int) int {
	if i+1 < len(c.States) {
		return i + 1
	}
	return 0
}

// String renders the FSM as a readable state table.
func (c *Controller) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "controller %s: %d states", c.Design, len(c.States))
	if c.Latency > 0 {
		fmt.Fprintf(&b, " (pipeline latency %d)", c.Latency)
	}
	b.WriteByte('\n')
	for _, st := range c.States {
		fmt.Fprintf(&b, "S%d:\n", st.Step)
		for _, a := range st.Actions {
			guard := ""
			for _, g := range a.Guards {
				guard += fmt.Sprintf(" if c%d=b%d", g.Cond, g.Branch)
			}
			fmt.Fprintf(&b, "  %-12s %s fn=%s mux1=%d(%s) mux2=%d(%s)%s\n",
				a.Name, a.ALU, a.Func, a.Mux1Sel, a.Src1, a.Mux2Sel, a.Src2, guard)
		}
		for _, w := range st.Writes {
			fmt.Fprintf(&b, "  R%d <= %s\n", w.Reg, w.Signal)
		}
	}
	return b.String()
}
