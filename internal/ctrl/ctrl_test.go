package ctrl

import (
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/mfsa"
	"repro/internal/op"
	"repro/internal/rtl"
	"repro/internal/sched"
)

func buildDesign(t *testing.T, cs int) (*dfg.Graph, *mfsa.Result) {
	t.Helper()
	ex := benchmarks.Facet()
	res, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: cs})
	if err != nil {
		t.Fatal(err)
	}
	return ex.Graph, res
}

func TestBuildController(t *testing.T) {
	g, res := buildDesign(t, 5)
	c, err := Build(g, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.States) != 5 {
		t.Fatalf("states = %d, want 5", len(c.States))
	}
	// Every node appears exactly once across all states.
	seen := make(map[dfg.NodeID]int)
	for _, st := range c.States {
		for _, a := range st.Actions {
			seen[a.Node]++
		}
	}
	if len(seen) != g.Len() {
		t.Errorf("actions cover %d nodes, want %d", len(seen), g.Len())
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("node %d issued %d times", id, n)
		}
	}
	// Actions appear in the state their schedule step says.
	for _, st := range c.States {
		for _, a := range st.Actions {
			if res.Schedule.Placements[a.Node].Step != st.Step {
				t.Errorf("action %s in S%d but scheduled at %d",
					a.Name, st.Step, res.Schedule.Placements[a.Node].Step)
			}
		}
	}
}

func TestMuxSelectsResolve(t *testing.T) {
	g, res := buildDesign(t, 4)
	c, err := Build(g, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range c.States {
		for _, a := range st.Actions {
			n := g.Node(a.Node)
			if a.Mux1Sel < 0 {
				t.Errorf("%s: port 1 unresolved", a.Name)
			}
			if n.Op.Arity() == 2 && a.Mux2Sel < 0 {
				t.Errorf("%s: port 2 unresolved", a.Name)
			}
			// The selected source must be the node's operand (either order).
			if a.Src1 != n.Args[0] && (len(n.Args) < 2 || a.Src1 != n.Args[1]) {
				t.Errorf("%s: src1 %q not an operand of %v", a.Name, a.Src1, n.Args)
			}
		}
	}
}

func TestRegisterWrites(t *testing.T) {
	g, res := buildDesign(t, 5)
	c, err := Build(g, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	for _, st := range c.States {
		writes += len(st.Writes)
	}
	stored := 0
	for _, grp := range res.Datapath.Registers {
		for _, iv := range grp {
			if iv.Birth >= 1 && iv.Birth <= res.Schedule.CS {
				stored++
			}
		}
	}
	if writes != stored {
		t.Errorf("register writes = %d, stored intervals = %d", writes, stored)
	}
	_ = g
}

func TestNextState(t *testing.T) {
	c := &Controller{States: make([]State, 4)}
	if c.NextState(0) != 1 || c.NextState(3) != 0 {
		t.Error("NextState wrong")
	}
}

func TestStringRendering(t *testing.T) {
	g, res := buildDesign(t, 4)
	c, err := Build(g, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	out := c.String()
	for _, want := range []string{"controller facet", "S1:", "S4:", "fn="} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	g, res := buildDesign(t, 4)
	// Unscheduled node: drop one placement from a copy.
	s2 := *res.Schedule
	s2.Placements = make(map[dfg.NodeID]sched.Placement, len(res.Schedule.Placements))
	for k, v := range res.Schedule.Placements {
		s2.Placements[k] = v
	}
	var anyID dfg.NodeID
	for id := range s2.Placements {
		anyID = id
		break
	}
	delete(s2.Placements, anyID)
	if _, err := Build(g, &s2, res.Datapath); err == nil {
		t.Error("unscheduled node accepted")
	}
	// Unbound node: fresh empty datapath.
	if _, err := Build(g, res.Schedule, rtl.NewDatapath(res.Datapath.Lib)); err == nil {
		t.Error("unbound node accepted")
	}
	_ = op.Add
}

func TestGuardedActions(t *testing.T) {
	g := dfg.New("guarded")
	g.AddInput("a")
	g.AddInput("b")
	c, _ := g.AddOp("c", op.Lt, "a", "b")
	x, _ := g.AddOp("x", op.Add, "a", "b")
	y, _ := g.AddOp("y", op.Sub, "a", "b")
	g.Tag(x, dfg.CondTag{Cond: 1, Branch: 0})
	g.Tag(y, dfg.CondTag{Cond: 1, Branch: 1})
	res, err := mfsa.Synthesize(g, mfsa.Options{CS: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := Build(g, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	guards := make(map[dfg.NodeID][]dfg.CondTag)
	for _, st := range ctl.States {
		for _, a := range st.Actions {
			guards[a.Node] = a.Guards
		}
	}
	if len(guards[c]) != 0 {
		t.Errorf("condition op guarded: %v", guards[c])
	}
	if len(guards[x]) != 1 || guards[x][0] != (dfg.CondTag{Cond: 1, Branch: 0}) {
		t.Errorf("x guards = %v", guards[x])
	}
	if len(guards[y]) != 1 || guards[y][0].Branch != 1 {
		t.Errorf("y guards = %v", guards[y])
	}
	if !strings.Contains(ctl.String(), "if c1=b0") {
		t.Errorf("guards not rendered:\n%s", ctl.String())
	}
}
