// Package baseline implements the comparison schedulers of the paper's
// related-work discussion: priority list scheduling under resource
// constraints ([4], Slicer-style), force-directed scheduling under time
// constraints ([6], HAL), and the trivial ASAP schedule ([2],
// FACET-style). The experiment harness runs them against MFS/MFSA on the
// same benchmarks to reproduce §6's comparative claims.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dfg"
	"repro/internal/mfs"
	"repro/internal/sched"
)

// ASAP schedules every operation at its earliest feasible step, using as
// many functional units per type as that requires.
func ASAP(g *dfg.Graph) (*sched.Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	cs := g.CriticalPathCycles()
	frames, err := sched.ComputeFrames(g, cs, 0)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	out := sched.NewSchedule(g, cs)
	next := make(map[string]map[int]int) // type -> step -> next free index
	for _, id := range g.TopoOrder() {
		n := g.Node(id)
		typ := mfs.TypeKey(n)
		if next[typ] == nil {
			next[typ] = make(map[int]int)
		}
		step := frames[id].ASAP
		// All rows of a multicycle op must use one index; take the max of
		// the per-row counters, then advance them all.
		idx := 0
		for i := 0; i < n.Cycles; i++ {
			if c := next[typ][step+i]; c > idx {
				idx = c
			}
		}
		for i := 0; i < n.Cycles; i++ {
			next[typ][step+i] = idx + 1
		}
		out.Place(id, sched.Placement{Step: step, Type: typ, Index: idx + 1})
	}
	if err := out.Verify(nil); err != nil {
		return nil, fmt.Errorf("baseline: internal: %w", err)
	}
	return out, nil
}

// List performs priority list scheduling under resource constraints:
// operations become ready when their predecessors complete; each step the
// ready operations are issued in priority order (least ALAP slack first)
// onto the limited units, and the schedule extends until everything is
// placed.
func List(g *dfg.Graph, limits map[string]int) (*sched.Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if len(limits) == 0 {
		return nil, fmt.Errorf("baseline: list scheduling needs resource limits")
	}
	cp := g.CriticalPathCycles()
	frames, err := sched.ComputeFrames(g, cp, 0)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	for _, n := range g.Nodes() {
		typ := mfs.TypeKey(n)
		if lim, ok := limits[typ]; ok && lim < 1 {
			return nil, fmt.Errorf("baseline: limit for %s is %d", typ, lim)
		}
	}
	finish := make(map[dfg.NodeID]int) // completion step
	placed := make(map[dfg.NodeID]sched.Placement)
	busyUntil := make(map[string][]int) // type -> per-instance busy-until step
	limitOf := func(typ string) int {
		if lim, ok := limits[typ]; ok {
			return lim
		}
		return math.MaxInt32
	}
	remaining := g.TopoOrder()
	maxSteps := 0
	for _, n := range g.Nodes() {
		maxSteps += n.Cycles
	}
	maxSteps += cp + 1
	for step := 1; len(remaining) > 0 && step <= maxSteps; step++ {
		// Ready ops whose predecessors completed before this step.
		var ready []dfg.NodeID
		for _, id := range remaining {
			ok := true
			for _, p := range g.Node(id).Preds() {
				if f, done := finish[p]; !done || f >= step {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, id)
			}
		}
		sort.Slice(ready, func(i, j int) bool {
			si, sj := frames[ready[i]].Mobility(), frames[ready[j]].Mobility()
			if si != sj {
				return si < sj
			}
			return ready[i] < ready[j]
		})
		for _, id := range ready {
			n := g.Node(id)
			typ := mfs.TypeKey(n)
			// Find a unit instance free for the whole duration.
			idx := -1
			for i, until := range busyUntil[typ] {
				if until < step {
					idx = i
					break
				}
			}
			if idx < 0 {
				if len(busyUntil[typ]) >= limitOf(typ) {
					continue // stall until a unit frees
				}
				busyUntil[typ] = append(busyUntil[typ], 0)
				idx = len(busyUntil[typ]) - 1
			}
			busyUntil[typ][idx] = step + n.Cycles - 1
			finish[id] = step + n.Cycles - 1
			placed[id] = sched.Placement{Step: step, Type: typ, Index: idx + 1}
			remaining = removeID(remaining, id)
		}
	}
	if len(remaining) > 0 {
		return nil, fmt.Errorf("baseline: list scheduling stalled with %d ops left", len(remaining))
	}
	cs := 0
	for _, f := range finish {
		if f > cs {
			cs = f
		}
	}
	out := sched.NewSchedule(g, cs)
	for id, p := range placed {
		out.Place(id, p)
	}
	if err := out.Verify(limits); err != nil {
		return nil, fmt.Errorf("baseline: internal: %w", err)
	}
	return out, nil
}

func removeID(ids []dfg.NodeID, id dfg.NodeID) []dfg.NodeID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}
