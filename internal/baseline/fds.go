package baseline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dfg"
	"repro/internal/mfs"
	"repro/internal/sched"
)

// ForceDirected implements HAL's force-directed scheduling [6] under a
// time constraint: operation start probabilities are spread uniformly
// over their time frames, per-type distribution graphs measure expected
// concurrency, and at each iteration the (operation, step) assignment
// with the lowest total force — self force plus the forces induced on
// direct predecessors and successors by window tightening — is committed.
// The result balances concurrency, minimizing functional units, and is
// the time-constrained baseline MFS is compared against in §6.
func ForceDirected(g *dfg.Graph, cs int) (*sched.Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	frames, err := sched.ComputeFrames(g, cs, 0)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	win := make(map[dfg.NodeID][2]int, g.Len())
	for id, f := range frames {
		win[dfg.NodeID(id)] = [2]int{f.ASAP, f.ALAP}
	}
	fixed := make(map[dfg.NodeID]int)

	for len(fixed) < g.Len() {
		dg := distributions(g, win, cs)
		bestForce := math.Inf(1)
		var bestID dfg.NodeID
		bestStep := 0
		foundAny := false
		for _, n := range g.Nodes() {
			if _, done := fixed[n.ID]; done {
				continue
			}
			w := win[n.ID]
			for s := w[0]; s <= w[1]; s++ {
				f, ok := totalForce(g, win, dg, cs, n, s)
				if !ok {
					continue
				}
				if !foundAny || f < bestForce-1e-12 ||
					(math.Abs(f-bestForce) <= 1e-12 && (n.ID < bestID || (n.ID == bestID && s < bestStep))) {
					bestForce, bestID, bestStep = f, n.ID, s
					foundAny = true
				}
			}
		}
		if !foundAny {
			return nil, fmt.Errorf("baseline: force-directed scheduling wedged with %d ops left",
				g.Len()-len(fixed))
		}
		fixed[bestID] = bestStep
		win[bestID] = [2]int{bestStep, bestStep}
		if !tighten(g, win, bestID, bestStep) {
			return nil, fmt.Errorf("baseline: window tightening emptied a frame")
		}
	}
	return bindInstances(g, cs, fixed)
}

// distributions builds the per-type distribution graphs: for each type,
// the expected number of operations active in each control step.
func distributions(g *dfg.Graph, win map[dfg.NodeID][2]int, cs int) map[string][]float64 {
	dg := make(map[string][]float64)
	for _, n := range g.Nodes() {
		typ := mfs.TypeKey(n)
		if dg[typ] == nil {
			dg[typ] = make([]float64, cs+2)
		}
		w := win[n.ID]
		span := w[1] - w[0] + 1
		p := 1.0 / float64(span)
		for s := w[0]; s <= w[1]; s++ {
			for c := 0; c < n.Cycles; c++ {
				if s+c <= cs {
					dg[typ][s+c] += p
				}
			}
		}
	}
	return dg
}

// selfForce is the classic force of locking node n to start step s:
// Σ_steps DG(step)·(p_after(step) − p_before(step)).
func selfForce(dg []float64, n *dfg.Node, w [2]int, s int) float64 {
	span := w[1] - w[0] + 1
	p := 1.0 / float64(span)
	force := 0.0
	for t := w[0]; t <= w[1]; t++ {
		for c := 0; c < n.Cycles; c++ {
			step := t + c
			if step >= len(dg) {
				continue
			}
			after := 0.0
			if t == s {
				after = 1.0
			}
			force += dg[step] * (after - p)
		}
	}
	return force
}

// totalForce evaluates locking n to step s including the induced forces
// on direct predecessors and successors whose windows the lock tightens.
// It returns ok=false when the lock would empty a neighbor's window.
func totalForce(g *dfg.Graph, win map[dfg.NodeID][2]int, dg map[string][]float64, cs int, n *dfg.Node, s int) (float64, bool) {
	force := selfForce(dg[mfs.TypeKey(n)], n, win[n.ID], s)
	for _, pid := range n.Preds() {
		pred := g.Node(pid)
		w := win[pid]
		hi := s - pred.Cycles
		if hi < w[0] {
			return 0, false
		}
		if hi < w[1] {
			force += restrictForce(dg[mfs.TypeKey(pred)], pred, w, [2]int{w[0], hi})
		}
	}
	for _, sid := range n.Succs() {
		succ := g.Node(sid)
		w := win[sid]
		lo := s + n.Cycles
		if lo > w[1] {
			return 0, false
		}
		if lo > w[0] {
			force += restrictForce(dg[mfs.TypeKey(succ)], succ, w, [2]int{lo, w[1]})
		}
	}
	return force, true
}

// restrictForce is the force of narrowing node n's window from old to new.
func restrictForce(dg []float64, n *dfg.Node, old, new [2]int) float64 {
	pOld := 1.0 / float64(old[1]-old[0]+1)
	pNew := 1.0 / float64(new[1]-new[0]+1)
	force := 0.0
	for t := old[0]; t <= old[1]; t++ {
		contrib := -pOld
		if t >= new[0] && t <= new[1] {
			contrib += pNew
		}
		for c := 0; c < n.Cycles; c++ {
			if step := t + c; step < len(dg) {
				force += dg[step] * contrib
			}
		}
	}
	return force
}

// tighten propagates a fixed assignment through the dependence graph,
// narrowing predecessor windows (transitively upward) and successor
// windows (transitively downward). It reports false if any window
// empties, which cannot happen for locks totalForce approved.
func tighten(g *dfg.Graph, win map[dfg.NodeID][2]int, id dfg.NodeID, s int) bool {
	return tightenUp(g, win, id) && tightenDown(g, win, id)
}

func tightenUp(g *dfg.Graph, win map[dfg.NodeID][2]int, id dfg.NodeID) bool {
	for _, pid := range g.Node(id).Preds() {
		pred := g.Node(pid)
		w := win[pid]
		if hi := win[id][1] - pred.Cycles; hi < w[1] {
			if hi < w[0] {
				return false
			}
			win[pid] = [2]int{w[0], hi}
			if !tightenUp(g, win, pid) {
				return false
			}
		}
	}
	return true
}

func tightenDown(g *dfg.Graph, win map[dfg.NodeID][2]int, id dfg.NodeID) bool {
	n := g.Node(id)
	for _, sid := range n.Succs() {
		w := win[sid]
		if lo := win[id][0] + n.Cycles; lo > w[0] {
			if lo > w[1] {
				return false
			}
			win[sid] = [2]int{lo, w[1]}
			if !tightenDown(g, win, sid) {
				return false
			}
		}
	}
	return true
}

// bindInstances converts fixed start steps into a verified schedule by
// packing operations of each type onto instances left to right.
func bindInstances(g *dfg.Graph, cs int, fixed map[dfg.NodeID]int) (*sched.Schedule, error) {
	out := sched.NewSchedule(g, cs)
	type key struct {
		typ  string
		step int
	}
	used := make(map[key]int)
	ids := make([]dfg.NodeID, 0, len(fixed))
	for id := range fixed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if fixed[ids[i]] != fixed[ids[j]] {
			return fixed[ids[i]] < fixed[ids[j]]
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids {
		n := g.Node(id)
		typ := mfs.TypeKey(n)
		s := fixed[id]
		idx := 0
		for c := 0; c < n.Cycles; c++ {
			if u := used[key{typ, s + c}]; u > idx {
				idx = u
			}
		}
		for c := 0; c < n.Cycles; c++ {
			used[key{typ, s + c}] = idx + 1
		}
		out.Place(id, sched.Placement{Step: s, Type: typ, Index: idx + 1})
	}
	if err := out.Verify(nil); err != nil {
		return nil, fmt.Errorf("baseline: internal: %w", err)
	}
	return out, nil
}
