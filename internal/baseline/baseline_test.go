package baseline

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/mfs"
	"repro/internal/op"
)

func TestASAPBasics(t *testing.T) {
	ex := benchmarks.Facet()
	s, err := ASAP(ex.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if s.CS != ex.Graph.CriticalPathCycles() {
		t.Errorf("ASAP cs = %d, want critical path %d", s.CS, ex.Graph.CriticalPathCycles())
	}
	// ASAP piles both adds into step 1.
	if got := s.InstancesPerType()["+"]; got != 2 {
		t.Errorf("ASAP adders = %d, want 2", got)
	}
}

func TestListScheduling(t *testing.T) {
	ex := benchmarks.Diffeq()
	limits := map[string]int{"*": 2, "+": 1, "-": 1, "<": 1}
	s, err := List(ex.Graph, limits)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(limits); err != nil {
		t.Fatal(err)
	}
	// With 2 multipliers the classic diffeq fits 4 steps.
	if s.CS > 5 {
		t.Errorf("list-scheduled cs = %d, want <= 5", s.CS)
	}
	// One multiplier serializes: at least 6 steps.
	s1, err := List(ex.Graph, map[string]int{"*": 1, "+": 1, "-": 1, "<": 1})
	if err != nil {
		t.Fatal(err)
	}
	if s1.CS < 6 {
		t.Errorf("one-multiplier cs = %d, want >= 6", s1.CS)
	}
}

func TestListNeedsLimits(t *testing.T) {
	ex := benchmarks.Facet()
	if _, err := List(ex.Graph, nil); err == nil {
		t.Error("nil limits accepted")
	}
	if _, err := List(ex.Graph, map[string]int{"+": 0}); err == nil {
		t.Error("zero limit accepted")
	}
}

func TestListMulticycle(t *testing.T) {
	ex := benchmarks.ARLattice() // 2-cycle multipliers
	limits := map[string]int{"*": 4, "+": 2}
	s, err := List(ex.Graph, limits)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(limits); err != nil {
		t.Fatal(err)
	}
	// 16 two-cycle muls on 4 units: at least 8 steps.
	if s.CS < 8 {
		t.Errorf("cs = %d, want >= 8", s.CS)
	}
}

func TestForceDirectedDiffeq(t *testing.T) {
	ex := benchmarks.Diffeq()
	s, err := ForceDirected(ex.Graph, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(nil); err != nil {
		t.Fatal(err)
	}
	// The published HAL result: 2 multipliers at cs=4.
	if got := s.InstancesPerType()["*"]; got != 2 {
		t.Errorf("FDS multipliers = %d, want 2", got)
	}
}

func TestForceDirectedBeatsASAPOnBalance(t *testing.T) {
	for _, mk := range []func() *benchmarks.Example{benchmarks.Facet, benchmarks.Diffeq, benchmarks.EWF} {
		ex := mk()
		cs := ex.Graph.CriticalPathCycles()
		asap, err := ASAP(ex.Graph)
		if err != nil {
			t.Fatal(err)
		}
		fds, err := ForceDirected(ex.Graph, cs)
		if err != nil {
			t.Fatal(err)
		}
		for typ, n := range fds.InstancesPerType() {
			if n > asap.InstancesPerType()[typ] {
				t.Errorf("%s: FDS uses more %s units (%d) than ASAP (%d)",
					ex.Name, typ, n, asap.InstancesPerType()[typ])
			}
		}
	}
}

func TestForceDirectedInfeasible(t *testing.T) {
	ex := benchmarks.Facet()
	if _, err := ForceDirected(ex.Graph, 2); err == nil {
		t.Error("cs below critical path accepted")
	}
}

func TestForceDirectedMatchesMFSOnEWF(t *testing.T) {
	// §6's comparative claim: MFS results are within the ballpark of FDS.
	// On the EWF stand-in both should find the 3-multiplier solution at
	// the critical path, and MFS must never be worse than FDS by more
	// than one unit of any type.
	g := benchmarks.EWF().Graph
	fds, err := ForceDirected(g, 17)
	if err != nil {
		t.Fatal(err)
	}
	mfsS, err := mfs.Schedule(benchmarks.EWF().Graph, mfs.Options{CS: 17})
	if err != nil {
		t.Fatal(err)
	}
	fi, mi := fds.InstancesPerType(), mfsS.InstancesPerType()
	for typ := range mi {
		if mi[typ] > fi[typ]+1 {
			t.Errorf("MFS %s = %d vs FDS %d", typ, mi[typ], fi[typ])
		}
	}
}

func TestRandomAgreement(t *testing.T) {
	// Property: on random DAGs at cp+slack, both FDS and MFS produce
	// legal schedules and MFS's peak FU usage is within 2x of FDS's
	// (they solve the same minimization).
	r := rand.New(rand.NewSource(5))
	kinds := []op.Kind{op.Add, op.Sub, op.Mul, op.Lt}
	for trial := 0; trial < 15; trial++ {
		g := dfg.New(fmt.Sprintf("ra%d", trial))
		g.AddInput("i0")
		names := []string{"i0"}
		for i := 0; i < 10+r.Intn(12); i++ {
			name := fmt.Sprintf("n%d", i)
			g.AddOp(name, kinds[r.Intn(len(kinds))],
				names[r.Intn(len(names))], names[r.Intn(len(names))])
			names = append(names, name)
		}
		cs := g.CriticalPathCycles() + 2
		fds, err := ForceDirected(g, cs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m, err := mfs.Schedule(g, mfs.Options{CS: cs})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for typ, n := range m.InstancesPerType() {
			if f := fds.InstancesPerType()[typ]; f > 0 && n > 2*f {
				t.Errorf("trial %d: MFS %s = %d vs FDS %d", trial, typ, n, f)
			}
		}
	}
}
