package diag

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// codeConstants parses codes.go and returns every Code* constant with
// its string value, keyed by identifier.
func codeConstants(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "codes.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for i, name := range vs.Names {
				if !strings.HasPrefix(name.Name, "Code") || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					t.Errorf("%s: value is not a string literal", name.Name)
					continue
				}
				v, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("%s: %v", name.Name, err)
				}
				out[name.Name] = v
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("no Code* constants found in codes.go")
	}
	return out
}

// TestCodeRegistryComplete is the static completeness check of the
// diagnostic-code registry: every Code* constant is a well-formed,
// collision-free HL code with a non-empty Docs contract, and Docs
// carries no orphan entries for codes that no longer exist.
func TestCodeRegistryComplete(t *testing.T) {
	codes := codeConstants(t)
	wellFormed := regexp.MustCompile(`^H[LV]\d{4}$`)
	byValue := make(map[string]string, len(codes))
	for name, v := range codes {
		if !wellFormed.MatchString(v) {
			t.Errorf("%s = %q: malformed code", name, v)
		}
		if prev, dup := byValue[v]; dup {
			t.Errorf("code collision: %s and %s are both %q", prev, name, v)
		}
		byValue[v] = name
		if Docs[v] == "" {
			t.Errorf("%s = %q has no Docs entry", name, v)
		}
	}
	for v := range Docs {
		if _, ok := byValue[v]; !ok {
			t.Errorf("Docs[%q] documents a code no constant defines", v)
		}
	}
}

// TestCodeReferencesResolve scans the whole tree for diag.Code*
// references and asserts each names a constant codes.go defines, so a
// deleted or renamed code cannot leave stale producers behind.
func TestCodeReferencesResolve(t *testing.T) {
	codes := codeConstants(t)
	ref := regexp.MustCompile(`\bdiag\.(Code[A-Za-z0-9]+)`)
	root := filepath.Join("..", "..")
	found := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range ref.FindAllStringSubmatch(string(src), -1) {
			found++
			if _, ok := codes[m[1]]; !ok {
				t.Errorf("%s references diag.%s which codes.go does not define", path, m[1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if found == 0 {
		t.Fatal("no diag.Code* references found anywhere; the scan is broken")
	}
}
