// Package diag defines the typed diagnostic model shared by every
// verification layer of the synthesis flow: the lint analyzers
// (internal/lint), the schedule verifier (internal/sched), the datapath
// validator (internal/rtl) and the style checker (internal/mfsa) all
// report diag.Diagnostic values instead of first-error Go errors, so a
// single run can surface every violation, machine-readably, with a
// stable code per failure class.
//
// The package is a leaf: it imports nothing from the repository, so any
// layer can depend on it without cycles.
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Severity ranks a diagnostic. Error-severity diagnostics indicate a
// broken artifact (an illegal schedule, a malformed netlist); warnings
// indicate suspicious-but-legal structure; info is commentary.
type Severity int

const (
	Info Severity = iota
	Warn
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warn:
		return "warn"
	default:
		return "info"
	}
}

// MarshalText renders the severity for JSON/CLI output.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Diagnostic is one finding against one synthesis artifact.
type Diagnostic struct {
	// Code is the stable machine identifier of the failure class, e.g.
	// "HL0116". Codes never change meaning; see Docs for the registry.
	Code string `json:"code"`

	Severity Severity `json:"severity"`

	// Analyzer names the lint pass that produced the diagnostic; empty
	// when a validator outside the lint driver produced it.
	Analyzer string `json:"analyzer,omitempty"`

	// Artifact names the layer the finding is about: "dfg", "schedule",
	// "frames", "liapunov", "datapath", "controller" or "netlist".
	Artifact string `json:"artifact,omitempty"`

	// Design is the design (graph) name the artifact belongs to.
	Design string `json:"design,omitempty"`

	// Loc locates the finding inside the artifact: a node or signal
	// name, an ALU instance, a netlist line ("line 17"), a state ("S3").
	Loc string `json:"loc,omitempty"`

	Message string `json:"message"`

	// Fix, when non-empty, hints how to repair the artifact.
	Fix string `json:"fix,omitempty"`

	// Counterexample, when non-nil, is a concrete input vector witnessing
	// the failure (translation-validation diagnostics attach one whenever
	// the symbolic divergence can be instantiated).
	Counterexample *Counterexample `json:"counterexample,omitempty"`
}

// Counterexample is a concrete witness for an equivalence failure: an
// input assignment under which the reference computation and the
// refuted artifact disagree on one output.
type Counterexample struct {
	// Inputs assigns a value to every primary input of the design.
	Inputs map[string]int64 `json:"inputs"`

	// Output is the design output the two sides disagree on.
	Output string `json:"output,omitempty"`

	// Want is the reference (DFG) value of Output under Inputs; Got is
	// the refuted artifact's symbolic value under the same assignment.
	Want int64 `json:"want"`
	Got  int64 `json:"got"`

	// SimConfirmed reports whether a concrete simulation of the design
	// (sim.RunRTLCtx) also exposed the failure on Inputs — either by
	// rejecting the artifact (SimError) or by producing a value other
	// than Want. Divergences in artifacts the simulator does not
	// exercise (e.g. multiplexer select indices, netlist text) can be
	// symbolically refuted yet simulate cleanly; the diagnostic stands
	// either way.
	SimConfirmed bool   `json:"sim_confirmed"`
	SimError     string `json:"sim_error,omitempty"`
}

func (d Diagnostic) String() string {
	var b strings.Builder
	b.WriteString(d.Code)
	fmt.Fprintf(&b, " %s", d.Severity)
	if d.Design != "" {
		fmt.Fprintf(&b, " [%s]", d.Design)
	}
	if d.Loc != "" {
		fmt.Fprintf(&b, " at %s", d.Loc)
	}
	b.WriteString(": ")
	b.WriteString(d.Message)
	return b.String()
}

// List is an ordered collection of diagnostics. It implements error so
// legacy call sites can return it directly; the error text is the first
// diagnostic's message (matching the historical first-error behavior)
// with a count suffix when more follow.
type List []Diagnostic

// Error implements the error interface.
func (l List) Error() string {
	if len(l) == 0 {
		return "no diagnostics"
	}
	if len(l) == 1 {
		return l[0].Message
	}
	return fmt.Sprintf("%s (and %d more)", l[0].Message, len(l)-1)
}

// ErrOrNil returns the list as an error when non-empty, else nil. The
// first diagnostic's Message is the error text, so callers migrating
// from first-error validators keep their error strings.
func (l List) ErrOrNil() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// Count returns how many diagnostics have at least the given severity.
func (l List) Count(min Severity) int {
	n := 0
	for _, d := range l {
		if d.Severity >= min {
			n++
		}
	}
	return n
}

// HasErrors reports whether any diagnostic is error-severity.
func (l List) HasErrors() bool { return l.Count(Error) > 0 }

// Sort orders the list deterministically: by analyzer, then code, then
// design, location and message. Aggregating concurrent analyzer output
// through Sort makes lint runs byte-identical at every parallelism.
func (l List) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Design != b.Design {
			return a.Design < b.Design
		}
		if a.Loc != b.Loc {
			return a.Loc < b.Loc
		}
		return a.Message < b.Message
	})
}
