package diag

// Stable diagnostic codes. The block a code lives in names the artifact
// layer; a code's meaning never changes once shipped (retire codes by
// leaving a gap, never by reuse). Docs maps every live code to its
// one-line contract; internal/lint's registry test asserts that each
// code produced anywhere in the tree is documented here.
const (
	// Lint driver (HL00xx).
	CodeAnalyzerCrash = "HL0001" // an analyzer returned a hard error instead of diagnostics

	// Data-flow graph (HL001x).
	CodeDFGEmptyName   = "HL0010" // node with an empty output-signal name
	CodeDFGUndefined   = "HL0011" // dangling edge: argument names no input or node output
	CodeDFGArity       = "HL0012" // operand count disagrees with the op table arity
	CodeDFGCycle       = "HL0013" // the name-resolved dataflow relation has a cycle
	CodeDFGDeadNode    = "HL0014" // node unreachable backwards from any declared output
	CodeDFGCrossLink   = "HL0015" // cached pred/succ links disagree with the Args relation
	CodeDFGBadCycles   = "HL0016" // non-positive per-node cycle count
	CodeDFGBadLoop     = "HL0017" // malformed folded-loop node
	CodeDFGDupName     = "HL0018" // two nodes (or a node and an input) share a name

	// Frames and schedule legality (HL01xx).
	CodeFrameIdentity = "HL0101" // recorded MF != PF − (RF ∪ FF)
	CodeFrameMember   = "HL0102" // committed position outside its recorded move frame
	CodeFrameBounds   = "HL0103" // recorded PF outside the independent ASAP/ALAP window
	CodeSchedWindow   = "HL0104" // placement outside the independently recomputed time frame
	CodeFrameMismatch = "HL0105" // recorded PF/RF/FF differ from the independent re-derivation

	CodeSchedUnplaced   = "HL0110" // graph node with no placement
	CodeSchedStepRange  = "HL0111" // placement (or its multicycle tail) outside 1..CS
	CodeSchedBadSlot    = "HL0112" // non-positive FU index or empty FU type
	CodeSchedPipeline   = "HL0113" // multicycle op exceeds the pipelining initiation interval
	CodeSchedDepOrder   = "HL0114" // consumer starts before a producer completes
	CodeSchedChain      = "HL0115" // intra-step combinational chain exceeds the clock period
	CodeSchedFUConflict = "HL0116" // two non-exclusive ops collide on one FU instance
	CodeSchedLimit      = "HL0117" // per-type instance count exceeds the user limit

	// Liapunov audit (HL02xx).
	CodeLiapProperties = "HL0201" // guiding function violates the theorem's grid properties
	CodeLiapEnergy     = "HL0202" // recorded energy != V(position) on replay
	CodeLiapDescent    = "HL0203" // non-decreasing V(X) step: a strictly lower-energy move-frame position was free
	CodeLiapTie        = "HL0204" // degenerate (tied) energies along a replayed trajectory
	CodeLiapCandidate  = "HL0205" // committed choice costs more than an evaluated alternative
	CodeLiapReplay     = "HL0206" // recorded trajectory is not replayable on an empty grid

	// Allocation / datapath (HL03xx).
	CodeRegOverlap     = "HL0301" // two lifetimes in one register overlap
	CodeALUUnplaced    = "HL0302" // ALU binding references a node the schedule never placed
	CodeMuxDupInput    = "HL0303" // duplicate signal in a multiplexer input list
	CodeMuxUnknown     = "HL0304" // multiplexer input names no input, node output or constant
	CodeALUDupBind     = "HL0305" // node bound to more than one ALU
	CodeAllocUnbound   = "HL0306" // scheduled node with no ALU binding
	CodeAllocStep      = "HL0307" // binding step disagrees with the schedule
	CodeALUNoUnit      = "HL0308" // ALU instance with no library unit
	CodeALUOpMismatch  = "HL0309" // bound operation not in its unit's capability set
	CodeStyle2SelfLoop = "HL0310" // style-2 violation: data-dependent ops share an ALU
	CodeALUBadStep     = "HL0311" // binding at a non-positive control step

	// Controller (HL04xx).
	CodeCtrlUnreachable = "HL0401" // FSM state unreachable from the reset state
	CodeCtrlWriteRace   = "HL0402" // two unguarded writes to one register in one state
	CodeCtrlGuardUnsat  = "HL0403" // guard set contains contradictory branch tags
	CodeCtrlNumbering   = "HL0404" // state numbering disagrees with its position
	CodeCtrlMuxSelect   = "HL0405" // action's mux select misses its source signal
	CodeCtrlActionStep  = "HL0406" // action issued in a state other than its scheduled step
	CodeCtrlMissing     = "HL0407" // scheduled node with no controller action

	// Netlist (HL05xx).
	CodeNetUndriven    = "HL0501" // declared wire used but never driven
	CodeNetMultiDriven = "HL0502" // signal driven by more than one source
	CodeNetWidth       = "HL0503" // assignment width mismatch
	CodeNetCombLoop    = "HL0504" // combinational cycle through assign statements
	CodeNetDupDecl     = "HL0505" // identifier declared twice (sanitize collision)
	CodeNetUndeclared  = "HL0506" // identifier used but never declared
	CodeNetOutput      = "HL0507" // output port never assigned
	CodeNetParse       = "HL0508" // construct the netlist parser cannot understand

	// Translation validation (HL06xx).
	CodeEquivDatapath  = "HL0601" // datapath symbolic value diverges from the DFG reference
	CodeEquivNetlist   = "HL0602" // netlist symbolic value diverges from the DFG reference
	CodeEquivRegister  = "HL0603" // cross-step operand not held by any register over its span
	CodeEquivStructure = "HL0604" // artifact defect blocks symbolic execution of a value

	// Static source invariants (HV00xx), reported by internal/vet /
	// cmd/hlsvet against the engine's own Go source rather than against
	// synthesized artifacts. Same registry discipline as the HL codes:
	// meanings are frozen, retirement leaves gaps.
	CodeVetHatchReason = "HV0001" // //hls: escape-hatch annotation carries no justification
	CodeVetMapOrder    = "HV0002" // map iteration order can reach synthesis results
	CodeVetWallClock   = "HV0011" // wall-clock read inside a deterministic package
	CodeVetGlobalRand  = "HV0012" // global math/rand state: results depend on process-wide seeding
	CodeVetCtxDropped  = "HV0021" // live context discarded for context.Background/TODO
	CodeVetCtxNoPoll   = "HV0022" // loop in an exported *Ctx entry point never polls cancellation
	CodeVetNoBoundary  = "HV0031" // facade/cmd entry point lacks a guard.Recover boundary
	CodeVetAllocOp     = "HV0041" // heap-allocating construct in a //hls:noalloc function
	CodeVetAllocCall   = "HV0042" // //hls:noalloc function calls an un-vetted callee
	CodeVetSharedMut   = "HV0051" // graph/library argument reaches a mutating position of a parallel entry point
	CodeVetForeignMut  = "HV0052" // function outside dfg/library mutates graph/library storage reached from a parameter
	CodeVetErrDropped  = "HV0061" // error result discarded in a determinism-critical package
	CodeVetErrShadow   = "HV0062" // short variable declaration shadows a live err in a determinism-critical package
)

// Docs is the code registry: every live code and its contract.
var Docs = map[string]string{
	CodeAnalyzerCrash: "an analyzer returned a hard error instead of diagnostics",

	CodeDFGEmptyName: "node with an empty output-signal name",
	CodeDFGUndefined: "dangling edge: argument names no input or node output",
	CodeDFGArity:     "operand count disagrees with the op table arity",
	CodeDFGCycle:     "the name-resolved dataflow relation has a cycle",
	CodeDFGDeadNode:  "node unreachable backwards from any declared output",
	CodeDFGCrossLink: "cached pred/succ links disagree with the Args relation",
	CodeDFGBadCycles: "non-positive per-node cycle count",
	CodeDFGBadLoop:   "malformed folded-loop node",
	CodeDFGDupName:   "two nodes (or a node and an input) share a name",

	CodeFrameIdentity: "recorded MF != PF − (RF ∪ FF)",
	CodeFrameMember:   "committed position outside its recorded move frame",
	CodeFrameBounds:   "recorded PF outside the independent ASAP/ALAP window",
	CodeSchedWindow:   "placement outside the independently recomputed time frame",
	CodeFrameMismatch: "recorded PF/RF/FF differ from the independent re-derivation",

	CodeSchedUnplaced:   "graph node with no placement",
	CodeSchedStepRange:  "placement (or its multicycle tail) outside 1..CS",
	CodeSchedBadSlot:    "non-positive FU index or empty FU type",
	CodeSchedPipeline:   "multicycle op exceeds the pipelining initiation interval",
	CodeSchedDepOrder:   "consumer starts before a producer completes",
	CodeSchedChain:      "intra-step combinational chain exceeds the clock period",
	CodeSchedFUConflict: "two non-exclusive ops collide on one FU instance",
	CodeSchedLimit:      "per-type instance count exceeds the user limit",

	CodeLiapProperties: "guiding function violates the theorem's grid properties",
	CodeLiapEnergy:     "recorded energy != V(position) on replay",
	CodeLiapDescent:    "non-decreasing V(X) step: a strictly lower-energy move-frame position was free",
	CodeLiapTie:        "degenerate (tied) energies along a replayed trajectory",
	CodeLiapCandidate:  "committed choice costs more than an evaluated alternative",
	CodeLiapReplay:     "recorded trajectory is not replayable on an empty grid",

	CodeRegOverlap:     "two lifetimes in one register overlap",
	CodeALUUnplaced:    "ALU binding references a node the schedule never placed",
	CodeMuxDupInput:    "duplicate signal in a multiplexer input list",
	CodeMuxUnknown:     "multiplexer input names no input, node output or constant",
	CodeALUDupBind:     "node bound to more than one ALU",
	CodeAllocUnbound:   "scheduled node with no ALU binding",
	CodeAllocStep:      "binding step disagrees with the schedule",
	CodeALUNoUnit:      "ALU instance with no library unit",
	CodeALUOpMismatch:  "bound operation not in its unit's capability set",
	CodeStyle2SelfLoop: "style-2 violation: data-dependent ops share an ALU",
	CodeALUBadStep:     "binding at a non-positive control step",

	CodeCtrlUnreachable: "FSM state unreachable from the reset state",
	CodeCtrlWriteRace:   "two unguarded writes to one register in one state",
	CodeCtrlGuardUnsat:  "guard set contains contradictory branch tags",
	CodeCtrlNumbering:   "state numbering disagrees with its position",
	CodeCtrlMuxSelect:   "action's mux select misses its source signal",
	CodeCtrlActionStep:  "action issued in a state other than its scheduled step",
	CodeCtrlMissing:     "scheduled node with no controller action",

	CodeNetUndriven:    "declared wire used but never driven",
	CodeNetMultiDriven: "signal driven by more than one source",
	CodeNetWidth:       "assignment width mismatch",
	CodeNetCombLoop:    "combinational cycle through assign statements",
	CodeNetDupDecl:     "identifier declared twice (sanitize collision)",
	CodeNetUndeclared:  "identifier used but never declared",
	CodeNetOutput:      "output port never assigned",
	CodeNetParse:       "construct the netlist parser cannot understand",

	CodeEquivDatapath:  "datapath symbolic value diverges from the DFG reference",
	CodeEquivNetlist:   "netlist symbolic value diverges from the DFG reference",
	CodeEquivRegister:  "cross-step operand not held by any register over its span",
	CodeEquivStructure: "artifact defect blocks symbolic execution of a value",

	CodeVetHatchReason: "//hls: escape-hatch annotation carries no justification",
	CodeVetMapOrder:    "map iteration order can reach synthesis results",
	CodeVetWallClock:   "wall-clock read inside a deterministic package",
	CodeVetGlobalRand:  "global math/rand state: results depend on process-wide seeding",
	CodeVetCtxDropped:  "live context discarded for context.Background/TODO",
	CodeVetCtxNoPoll:   "loop in an exported *Ctx entry point never polls cancellation",
	CodeVetNoBoundary:  "facade/cmd entry point lacks a guard.Recover boundary",
	CodeVetAllocOp:     "heap-allocating construct in a //hls:noalloc function",
	CodeVetAllocCall:   "//hls:noalloc function calls an un-vetted callee",
	CodeVetSharedMut:   "graph/library argument reaches a mutating position of a parallel entry point",
	CodeVetForeignMut:  "function outside dfg/library mutates graph/library storage reached from a parameter",
	CodeVetErrDropped:  "error result discarded in a determinism-critical package",
	CodeVetErrShadow:   "short variable declaration shadows a live err in a determinism-critical package",
}
