package mfsa

import (
	"fmt"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/library"
	"repro/internal/rtl"
	"repro/internal/sched"
)

// TestRegDeltaMatchesPackOracle runs full syntheses over every benchmark
// with checkRegDelta armed, so every single f^REG evaluation the
// incremental overlap counter produces is cross-checked in regDelta
// against the original pack-both-interval-lists-and-diff oracle. Any
// divergence panics with the node and step. Options cover the dimensions
// that shape lifetimes: chaining (same-step consumption shrinks spans),
// registered inputs (signals born at boundary 0), reweighted f^REG
// (different commit orders), and the frozen-time Allocate path.
func TestRegDeltaMatchesPackOracle(t *testing.T) {
	checkRegDelta = true
	defer func() { checkRegDelta = false }()

	for _, ex := range benchmarks.All() {
		for _, cs := range ex.TimeConstraints {
			variants := []struct {
				name string
				opt  Options
			}{
				{"plain", Options{CS: cs}},
				{"chained", Options{CS: cs, ClockNs: ex.ClockNs}},
				{"reginputs", Options{CS: cs, RegisterInputs: true}},
				{"regweight", Options{CS: cs, Weights: Weights{Time: 1, ALU: 1, Mux: 1, Reg: 5}}},
			}
			for _, v := range variants {
				if v.opt.ClockNs == 0 && cs < ex.Graph.CriticalPathCycles() {
					continue // constraint only feasible with chaining on
				}
				t.Run(fmt.Sprintf("%s/T=%d/%s", ex.Name, cs, v.name), func(t *testing.T) {
					res, err := Synthesize(ex.Graph, v.opt)
					if err != nil {
						t.Fatalf("Synthesize: %v", err)
					}
					// The frozen-time binder exercises bindOne's memo path
					// over the schedule the full run just produced.
					if _, err := Allocate(res.Schedule, Options{Lib: v.opt.Lib, RegisterInputs: v.opt.RegisterInputs}); err != nil {
						t.Fatalf("Allocate: %v", err)
					}
				})
			}
		}
	}
}

// TestRegBaseTracksPackedCount asserts the committed-prefix invariant
// white-box: replaying a finished schedule through the state one commit
// at a time, the incrementally maintained regBase must equal
// len(rtl.PackRegisters(intervals(nil, 0))) — the quantity the old
// regDelta recomputed from scratch — after every single commit.
func TestRegBaseTracksPackedCount(t *testing.T) {
	for _, ex := range benchmarks.All() {
		for _, registerInputs := range []bool{false, true} {
			ex := ex
			name := ex.Name
			if registerInputs {
				name += "/reginputs"
			}
			t.Run(name, func(t *testing.T) {
				cs := ex.TimeConstraints[0]
				opt := Options{CS: cs, ClockNs: ex.ClockNs, RegisterInputs: registerInputs}
				res, err := Synthesize(ex.Graph, opt)
				if err != nil {
					t.Fatal(err)
				}
				opt.Lib = libOf(t, opt)
				frames, err := sched.ComputeFrames(ex.Graph, cs, opt.ClockNs)
				if err != nil {
					t.Fatal(err)
				}
				s := newState(ex.Graph, opt, frames, nil)
				if got, want := s.regBase, len(rtl.PackRegisters(s.intervals(nil, 0))); got != want {
					t.Fatalf("initial regBase = %d, packed count = %d", got, want)
				}
				for _, st := range res.Schedule.Trace.Steps {
					n := ex.Graph.Node(st.Node)
					u, ok := opt.Lib.Lookup(st.Type)
					if !ok {
						t.Fatalf("trace names unknown unit %q", st.Type)
					}
					if err := s.commit(n, candidate{unit: u, pos: st.Pos, value: st.Energy}, nil, nil); err != nil {
						t.Fatalf("replaying %q: %v", n.Name, err)
					}
					if got, want := s.regBase, len(rtl.PackRegisters(s.intervals(nil, 0))); got != want {
						t.Fatalf("after committing %q: regBase = %d, packed count = %d", n.Name, got, want)
					}
				}
			})
		}
	}
}

// libOf resolves the library an Options value would synthesize with.
func libOf(t *testing.T, opt Options) *library.Library {
	t.Helper()
	if opt.Lib != nil {
		return opt.Lib
	}
	return library.NCRLike()
}
