package mfsa

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dfg"
	"repro/internal/grid"
	"repro/internal/library"
	"repro/internal/op"
	"repro/internal/sched"
)

// Allocate binds an externally produced schedule (MFS, force-directed,
// list-scheduled, ...) to a datapath using MFSA's cost machinery with
// the time dimension frozen: every operation keeps its control step and
// only the ALU choice is optimized (incremental ALU + MUX + REG terms,
// §4.1 without f^TIME). This is the "independent phases" flow the
// paper's introduction argues against; the experiments package compares
// it with full MFSA to reproduce that motivation quantitatively.
//
// The input schedule's FU types are ignored; only steps matter. Style
// and weights behave as in Synthesize.
func Allocate(s *sched.Schedule, opt Options) (*Result, error) {
	return AllocateCtx(context.Background(), s, opt)
}

// AllocateCtx is Allocate with cancellation: ctx is checked before every
// binding decision, so a cancelled run returns ctx.Err() within one
// operation's worth of work.
func AllocateCtx(ctx context.Context, s *sched.Schedule, opt Options) (*Result, error) {
	g := s.Graph
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("mfsa: %w", err)
	}
	if opt.Lib == nil {
		opt.Lib = library.NCRLike()
	}
	if err := opt.Lib.Validate(); err != nil {
		return nil, fmt.Errorf("mfsa: %w", err)
	}
	if opt.Style == 0 {
		opt.Style = Style1
	}
	opt.CS = s.CS
	opt.ClockNs = s.ClockNs
	opt.Latency = s.Latency
	unitsByOp := make(map[op.Kind][]*library.Unit)
	for _, n := range g.Nodes() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if n.IsLoop() {
			return nil, fmt.Errorf("mfsa: Allocate does not bind loop nodes (node %q)", n.Name)
		}
		us, ok := unitsByOp[n.Op]
		if !ok {
			us = candidateUnits(opt, n)
			unitsByOp[n.Op] = us
		}
		if len(us) == 0 {
			return nil, fmt.Errorf("mfsa: library has no unit for %q", n.Name)
		}
		if _, ok := s.Placements[n.ID]; !ok {
			return nil, fmt.Errorf("mfsa: node %q unscheduled", n.Name)
		}
	}

	st := allocState(g, opt, unitsByOp)
	for _, id := range allocationOrder(s) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := st.bindOne(s, id); err != nil {
			return nil, err
		}
	}
	return st.finishAlloc()
}

// allocationOrder visits operations by start step (then ID), so reuse
// decisions see a growing prefix of the timeline.
func allocationOrder(s *sched.Schedule) []dfg.NodeID {
	ids := make([]dfg.NodeID, 0, s.Graph.Len())
	for _, n := range s.Graph.Nodes() {
		ids = append(ids, n.ID)
	}
	sort.Slice(ids, func(i, j int) bool {
		si, sj := s.Placements[ids[i]].Step, s.Placements[ids[j]].Step
		if si != sj {
			return si < sj
		}
		return ids[i] < ids[j]
	})
	return ids
}

func allocState(g *dfg.Graph, opt Options, unitsByOp map[op.Kind][]*library.Unit) *state {
	// Reuse the Synthesize state with trivial frames; the binder never
	// consults them.
	return newState(g, opt, make(sched.Frames, g.Len()), unitsByOp)
}

// bindOne chooses the cheapest ALU instance for a fixed (node, step):
// reuse an existing compatible instance if its footprint is free, else
// open the cheapest new one.
func (st *state) bindOne(s *sched.Schedule, id dfg.NodeID) error {
	st.memoGen++ // new candidate evaluation: invalidate the regDelta memo
	n := st.g.Node(id)
	step := s.Placements[id].Step
	units := st.unitsFor(n)
	var best candidate
	evaluated := st.candBuf[:0] // commit copies what it keeps
	found := false
	consider := func(u *library.Unit, idx int) {
		table := st.tableOf(u)
		p := grid.Pos{Step: step, Index: idx}
		if !table.CanPlace(st.g, id, p, n.Cycles) {
			return
		}
		if st.opt.Style == Style2 && st.neighborsOnALU(n, cell{u.Name, idx}) {
			return
		}
		v, swapped := st.value(n, u, p)
		c := candidate{unit: u, pos: p, value: v, swapped: swapped}
		if !st.opt.NoTrace {
			evaluated = append(evaluated, sched.TraceCandidate{Pos: p, Type: u.Name, Energy: v})
		}
		if !found || less(c, best) {
			best, found = c, true
		}
	}
	for _, u := range units {
		// Existing instances plus one fresh column per unit type.
		maxIdx := 0
		//hls:orderok max fold over instance indexes; commutative
		for key := range st.alus {
			if key.unit == u.Name && key.index > maxIdx {
				maxIdx = key.index
			}
		}
		limit := maxIdx + 1
		if lim, ok := st.opt.Limits[u.Name]; ok && limit > lim {
			limit = lim
		}
		if limit > st.maxInst[u.Name] {
			limit = st.maxInst[u.Name]
		}
		if limit >= 1 {
			st.tableOf(u).Grow(limit) // consider probes indexes 1..limit
		}
		st.beginUnitEval(limit) // value()'s column-term memo scope
		for idx := 1; idx <= limit; idx++ {
			consider(u, idx)
		}
	}
	st.candBuf = evaluated
	if !found {
		return fmt.Errorf("mfsa: no ALU for %q at step %d", n.Name, step)
	}
	return st.commit(n, best, evaluated, nil)
}

func (st *state) finishAlloc() (*Result, error) {
	out := sched.NewSchedule(st.g, st.opt.CS)
	out.ClockNs = st.opt.ClockNs
	out.Latency = st.opt.Latency
	for _, name := range st.pipeTypes {
		out.PipelinedTypes[name] = true
	}
	for id, p := range st.placed {
		if p.Step == 0 {
			continue // unbound; Verify reports it
		}
		out.Place(dfg.NodeID(id), p)
	}
	if !st.opt.NoTrace {
		out.Trace = &sched.Trace{Steps: st.trace}
	}
	if err := out.Verify(st.opt.Limits); err != nil {
		return nil, fmt.Errorf("mfsa: allocation produced an illegal binding: %w", err)
	}
	st.dp.ReoptimizeMuxes(st.g)
	st.dp.AssignRegisters(st.intervals(nil, 0))
	if err := st.dp.Validate(); err != nil {
		return nil, fmt.Errorf("mfsa: allocation produced an invalid datapath: %w", err)
	}
	if st.opt.Style == Style2 {
		if err := VerifyStyle2(st.g, st.dp); err != nil {
			return nil, fmt.Errorf("mfsa: %w", err)
		}
	}
	return &Result{Schedule: out, Datapath: st.dp, Cost: st.dp.Cost()}, nil
}
