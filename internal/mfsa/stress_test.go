package mfsa

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/mfs"
	"repro/internal/op"
	"repro/internal/sim"
)

// TestExtendedBenchmarksEndToEnd exercises the full flow — MFS, MFSA in
// both styles, and simulation cross-checks — on the extended kernel
// suite at every time constraint.
func TestExtendedBenchmarksEndToEnd(t *testing.T) {
	for _, ex := range benchmarks.Extended() {
		for _, cs := range ex.TimeConstraints {
			s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: cs})
			if err != nil {
				t.Fatalf("%s cs=%d mfs: %v", ex.Name, cs, err)
			}
			if err := sim.CrossCheck(s, nil, sim.RandomInputs(ex.Graph, int64(cs))); err != nil {
				t.Fatalf("%s cs=%d: %v", ex.Name, cs, err)
			}
			for _, style := range []Style{Style1, Style2} {
				res, err := Synthesize(ex.Graph, Options{CS: cs, Style: style})
				if err != nil {
					t.Fatalf("%s cs=%d style %d: %v", ex.Name, cs, style, err)
				}
				if err := res.Schedule.Verify(nil); err != nil {
					t.Fatalf("%s cs=%d style %d: %v", ex.Name, cs, style, err)
				}
				if err := sim.CrossCheck(res.Schedule, res.Datapath, sim.RandomInputs(ex.Graph, 7)); err != nil {
					t.Fatalf("%s cs=%d style %d: %v", ex.Name, cs, style, err)
				}
				if style == Style2 {
					if err := VerifyStyle2(ex.Graph, res.Datapath); err != nil {
						t.Fatalf("%s cs=%d: %v", ex.Name, cs, err)
					}
				}
			}
		}
	}
}

// TestExtendedMultiplierTrend checks the time/hardware trade-off on the
// extended kernels: multiplier usage must be non-increasing in T and hit
// the serialization floor at the loosest constraint.
func TestExtendedMultiplierTrend(t *testing.T) {
	for _, ex := range benchmarks.Extended() {
		prev := 1 << 30
		for _, cs := range ex.TimeConstraints {
			s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: cs})
			if err != nil {
				t.Fatalf("%s cs=%d: %v", ex.Name, cs, err)
			}
			m := s.InstancesPerType()["*"]
			if m > prev {
				t.Errorf("%s: multipliers increased with looser T (%d -> %d at cs=%d)",
					ex.Name, prev, m, cs)
			}
			prev = m
		}
	}
}

// TestFIR16ResourceConstrained pins the resource-constrained mode on a
// bigger kernel: one 2-cycle multiplier serializes 16 products into at
// least 32 steps.
func TestFIR16ResourceConstrained(t *testing.T) {
	ex := benchmarks.FIR16()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{
		Limits: map[string]int{"*": 1, "+": 1},
		MaxCS:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.CS < 32 {
		t.Errorf("cs = %d, below the 32-cycle multiplier serialization bound", s.CS)
	}
	if err := s.Verify(map[string]int{"*": 1, "+": 1}); err != nil {
		t.Fatal(err)
	}
	// Four multipliers roughly quarter the schedule.
	s4, err := mfs.Schedule(ex.Graph, mfs.Options{
		Limits: map[string]int{"*": 4, "+": 2},
		MaxCS:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s4.CS >= s.CS {
		t.Errorf("4 multipliers did not beat 1: %d vs %d steps", s4.CS, s.CS)
	}
}

// TestRandomChainedSynthesis drives MFSA with chaining enabled on random
// graphs and cross-checks every result cycle-accurately.
func TestRandomChainedSynthesis(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	kinds := []op.Kind{op.Add, op.Sub, op.And, op.Lt}
	for trial := 0; trial < 12; trial++ {
		g := dfg.New(fmt.Sprintf("chs%d", trial))
		g.AddInput("i0")
		names := []string{"i0"}
		for i := 0; i < 8+r.Intn(10); i++ {
			name := fmt.Sprintf("n%d", i)
			if _, err := g.AddOp(name, kinds[r.Intn(len(kinds))],
				names[r.Intn(len(names))], names[r.Intn(len(names))]); err != nil {
				t.Fatal(err)
			}
			names = append(names, name)
		}
		cp := g.CriticalPathCycles()
		var res *Result
		var err error
		for cs := cp; cs <= cp+4; cs++ {
			res, err = Synthesize(g, Options{CS: cs, ClockNs: 100})
			if err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Schedule.Verify(nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sim.CrossCheck(res.Schedule, res.Datapath, sim.RandomInputs(g, int64(trial))); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
