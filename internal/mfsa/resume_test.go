package mfsa

import (
	"fmt"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/gen"
	"repro/internal/op"
)

// sameResult asserts two synthesis results are bit-identical: every
// placement, every ALU binding and mux list, every register interval,
// and the cost breakdown.
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	gs, ws := got.Schedule, want.Schedule
	if gs.CS != ws.CS || len(gs.Placements) != len(ws.Placements) {
		t.Fatalf("%s: schedule shape differs", label)
	}
	for id, wp := range ws.Placements {
		if gp := gs.Placements[id]; gp != wp {
			t.Fatalf("%s: node %d placed %+v, fresh run places %+v", label, id, gp, wp)
		}
	}
	gd, wd := got.Datapath, want.Datapath
	if len(gd.ALUs) != len(wd.ALUs) {
		t.Fatalf("%s: %d ALUs != %d", label, len(gd.ALUs), len(wd.ALUs))
	}
	for i := range wd.ALUs {
		ga, wa := gd.ALUs[i], wd.ALUs[i]
		if ga.Name != wa.Name || ga.Unit.Name != wa.Unit.Name ||
			fmt.Sprint(ga.Ops) != fmt.Sprint(wa.Ops) ||
			fmt.Sprint(ga.L1) != fmt.Sprint(wa.L1) || fmt.Sprint(ga.L2) != fmt.Sprint(wa.L2) {
			t.Fatalf("%s: ALU %d differs:\n%+v\nfresh:\n%+v", label, i, ga, wa)
		}
	}
	if fmt.Sprint(gd.Registers) != fmt.Sprint(wd.Registers) {
		t.Fatalf("%s: register packing differs", label)
	}
	if got.Cost != want.Cost {
		t.Fatalf("%s: cost %+v != fresh %+v", label, got.Cost, want.Cost)
	}
}

// resumeGraphs returns the graphs the resume equivalence suite edits.
func resumeGraphs(t *testing.T) []*dfg.Graph {
	t.Helper()
	var out []*dfg.Graph
	for _, ex := range benchmarks.All() {
		out = append(out, ex.Graph)
	}
	for seed := int64(0); seed < 3; seed++ {
		g, err := gen.Generate(gen.Config{Nodes: 150, Seed: seed, MulCycles: 2})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, g)
	}
	return out
}

// TestResumeAddSinkMatchesFresh appends a sink op to each graph and
// checks ResumeCtx over the old trajectory equals a from-scratch
// synthesis bit for bit — schedule, datapath and cost.
func TestResumeAddSinkMatchesFresh(t *testing.T) {
	for _, g := range resumeGraphs(t) {
		opt := Options{CS: g.CriticalPathCycles() + 3}
		prev, err := Synthesize(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		outs := g.Outputs()
		for k := 0; k+1 < len(outs) && k < 3; k++ {
			c := g.Clone()
			nid, err := c.AddOp(fmt.Sprintf("resume_sink%d", k), op.Add, outs[k], outs[k+1])
			if err != nil {
				t.Fatal(err)
			}
			got, err := Resume(c, opt, prev, prev.Schedule.Frames, []dfg.NodeID{nid})
			if err != nil {
				t.Fatalf("%s: resume: %v", g.Name, err)
			}
			want, err := Synthesize(c, opt)
			if err != nil {
				t.Fatalf("%s: fresh: %v", g.Name, err)
			}
			sameResult(t, fmt.Sprintf("%s+sink%d", g.Name, k), got, want)
			if got.Schedule.Trace == nil || got.Schedule.Frames == nil {
				t.Fatalf("%s: resumed result lost its metadata", g.Name)
			}
		}
	}
}

// TestResumeRetimeMatchesFresh retimes single nodes and checks resume
// equals from-scratch synthesis.
func TestResumeRetimeMatchesFresh(t *testing.T) {
	for _, g := range resumeGraphs(t) {
		opt := Options{CS: g.CriticalPathCycles() + 4}
		prev, err := Synthesize(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		for id := 0; id < g.Len(); id += 1 + g.Len()/4 {
			c := g.Clone()
			nid := dfg.NodeID(id)
			if err := c.SetCycles(nid, c.Node(nid).Cycles%2+1); err != nil {
				t.Fatal(err)
			}
			got, err := Resume(c, opt, prev, prev.Schedule.Frames, []dfg.NodeID{nid})
			if err != nil {
				t.Fatalf("%s retime %d: resume: %v", g.Name, id, err)
			}
			want, err := Synthesize(c, opt)
			if err != nil {
				t.Fatalf("%s retime %d: fresh: %v", g.Name, id, err)
			}
			sameResult(t, fmt.Sprintf("%s~retime%d", g.Name, id), got, want)
		}
	}
}

// TestResumeStyle2AndLimits checks replay under the style-2 restriction
// and user instance limits, both of which shape the candidate space.
func TestResumeStyle2AndLimits(t *testing.T) {
	ex := benchmarks.EWF()
	g := ex.Graph
	opt := Options{
		CS:     g.CriticalPathCycles() + 4,
		Style:  Style2,
		Limits: map[string]int{"fu_mul": 3},
	}
	prev, err := Synthesize(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	nid, err := c.AddOp("s2_sink", op.Add, g.Outputs()[0], c.Node(dfg.NodeID(g.Len()/2)).Name)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Resume(c, opt, prev, prev.Schedule.Frames, []dfg.NodeID{nid})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Synthesize(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "style2+limits", got, want)
	if err := VerifyStyle2(c, got.Datapath); err != nil {
		t.Fatal(err)
	}
}

// TestResumeFallbacks checks the degenerate entries still return the
// correct (fresh-run-identical) result: a NoTrace previous run and a nil
// previous result.
func TestResumeFallbacks(t *testing.T) {
	g, err := gen.Generate(gen.Config{Nodes: 100, Seed: 2, MulCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{CS: g.CriticalPathCycles() + 3}
	prevNoTrace, err := Synthesize(g, Options{CS: opt.CS, NoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if prevNoTrace.Schedule.Trace != nil {
		t.Fatal("NoTrace run recorded a trace")
	}
	c := g.Clone()
	nid, err := c.AddOp("extra", op.Neg, g.Outputs()[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := Resume(c, opt, prevNoTrace, prevNoTrace.Schedule.Frames, []dfg.NodeID{nid})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Synthesize(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "noTrace-fallback", got, want)

	if _, err := Resume(c, opt, nil, nil, []dfg.NodeID{nid}); err != nil {
		t.Fatalf("nil prev: %v", err)
	}
}

// TestResumeResumedTrace checks a resumed result's lightweight trace is
// itself a valid resume source.
func TestResumeResumedTrace(t *testing.T) {
	g, err := gen.Generate(gen.Config{Nodes: 150, Seed: 4, MulCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{CS: g.CriticalPathCycles() + 3}
	prev, err := Synthesize(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	outs := g.Outputs()
	c1 := g.Clone()
	n1, err := c1.AddOp("extra1", op.Add, outs[0], outs[1])
	if err != nil {
		t.Fatal(err)
	}
	mid, err := Resume(c1, opt, prev, prev.Schedule.Frames, []dfg.NodeID{n1})
	if err != nil {
		t.Fatal(err)
	}
	c2 := c1.Clone()
	n2, err := c2.AddOp("extra2", op.Sub, "extra1", outs[2])
	if err != nil {
		t.Fatal(err)
	}
	got, err := Resume(c2, opt, mid, mid.Schedule.Frames, []dfg.NodeID{n2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Synthesize(c2, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "second-resume", got, want)
}

// TestNoTraceSameResult checks NoTrace changes only the metadata, never
// the synthesis outcome.
func TestNoTraceSameResult(t *testing.T) {
	for _, ex := range benchmarks.All() {
		g := ex.Graph
		opt := Options{CS: g.CriticalPathCycles() + 3}
		with, err := Synthesize(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		opt.NoTrace = true
		without, err := Synthesize(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if without.Schedule.Trace != nil {
			t.Fatalf("%s: NoTrace run recorded a trace", g.Name)
		}
		sameResult(t, ex.Name+"/notrace", without, with)
	}
}
