package mfsa

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/library"
	"repro/internal/op"
	"repro/internal/sched"
)

func synth(t *testing.T, g *dfg.Graph, opt Options) *Result {
	t.Helper()
	res, err := Synthesize(g, opt)
	if err != nil {
		t.Fatalf("Synthesize(%s): %v", g.Name, err)
	}
	if err := res.Schedule.Verify(nil); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if err := res.Datapath.Validate(); err != nil {
		t.Fatalf("datapath: %v", err)
	}
	return res
}

// checkBindings asserts every operation is bound exactly once to a
// capable ALU at its scheduled step.
func checkBindings(t *testing.T, g *dfg.Graph, res *Result) {
	t.Helper()
	for _, n := range g.Nodes() {
		a, ok := res.Datapath.FindBinding(n.ID)
		if !ok {
			t.Fatalf("node %q unbound", n.Name)
		}
		if !a.Unit.Can(n.Op) {
			t.Errorf("node %q (op %v) bound to incapable %s", n.Name, n.Op, a.Unit.Name)
		}
		p := res.Schedule.Placements[n.ID]
		found := false
		for _, b := range a.Ops {
			if b.Node == n.ID && b.Step == p.Step {
				found = true
			}
		}
		if !found {
			t.Errorf("node %q binding step mismatch", n.Name)
		}
	}
}

func TestFacetSynthesis(t *testing.T) {
	ex := benchmarks.Facet()
	for _, cs := range ex.TimeConstraints {
		res := synth(t, benchmarks.Facet().Graph, Options{CS: cs})
		checkBindings(t, ex.Graph, res)
		if res.Cost.Total <= 0 {
			t.Errorf("cs=%d: non-positive cost", cs)
		}
		if res.Cost.NumALUs == 0 || res.Cost.NumRegs == 0 {
			t.Errorf("cs=%d: degenerate datapath %+v", cs, res.Cost)
		}
	}
}

func TestLooserTimeConstraintIsNotMoreExpensive(t *testing.T) {
	// More steps allow more sharing: ALU area at T=5 must not exceed T=4.
	c4 := synth(t, benchmarks.Facet().Graph, Options{CS: 4}).Cost
	c5 := synth(t, benchmarks.Facet().Graph, Options{CS: 5}).Cost
	if c5.ALUArea > c4.ALUArea {
		t.Errorf("ALU area grew with looser T: %v -> %v", c4.ALUArea, c5.ALUArea)
	}
}

func TestStyle2NoSelfLoops(t *testing.T) {
	for _, mk := range []func() *benchmarks.Example{benchmarks.Facet, benchmarks.Diffeq} {
		ex := mk()
		cs := ex.TimeConstraints[len(ex.TimeConstraints)-1]
		res := synth(t, ex.Graph, Options{CS: cs, Style: Style2})
		if err := VerifyStyle2(ex.Graph, res.Datapath); err != nil {
			t.Errorf("%s: %v", ex.Name, err)
		}
	}
}

func TestStyle2Overhead(t *testing.T) {
	// §6: style 2 costs more than style 1 but by a bounded margin. The
	// paper reports 2–11%; with our multiplier-heavy synthetic library a
	// multiplication-dominated example can be forced into one extra
	// multiplier (diffeq: m4's parents occupy both style-1 multipliers),
	// so the band here is wider. Style 2 must never be cheaper beyond
	// noise, and never cost more than double.
	for _, mk := range []func() *benchmarks.Example{benchmarks.Facet, benchmarks.Diffeq, benchmarks.ARLattice} {
		ex := mk()
		cs := ex.TimeConstraints[len(ex.TimeConstraints)-1]
		c1 := synth(t, mk().Graph, Options{CS: cs, Style: Style1}).Cost.Total
		c2 := synth(t, mk().Graph, Options{CS: cs, Style: Style2}).Cost.Total
		ratio := c2 / c1
		if ratio < 0.95 || ratio > 2.0 {
			t.Errorf("%s: style2/style1 = %.3f outside [0.95, 2.0] (%.0f vs %.0f)",
				ex.Name, ratio, c2, c1)
		}
	}
}

func TestCommutativeMuxSharing(t *testing.T) {
	// Two adds with mirrored operands at different steps: binding both to
	// one ALU with the swap optimization needs no multiplexers at all.
	g := dfg.New("mirror")
	g.AddInput("a")
	g.AddInput("b")
	g.AddOp("x", op.Add, "a", "b")
	g.AddOp("y", op.Add, "x", "a") // chain forces step 2; shares port signals partially
	res := synth(t, g, Options{CS: 2})
	if res.Cost.NumALUs != 1 {
		t.Fatalf("ALUs = %d, want 1", res.Cost.NumALUs)
	}
}

func TestRegisterAccounting(t *testing.T) {
	// x born step 1, consumed step 3; y born 2, consumed 3: lifetimes
	// [1,3) and [2,3) overlap -> 2 registers.
	g := dfg.New("regs")
	g.AddInput("a")
	g.AddOp("x", op.Add, "a", "a")
	g.AddOp("y", op.Sub, "a", "a")
	g.AddOp("z", op.Mul, "x", "y")
	res := synth(t, g, Options{CS: 3, Limits: map[string]int{"fu_sub": 1, "fu_add": 1}})
	// however scheduled, z's result is also held one boundary.
	if res.Cost.NumRegs < 2 {
		t.Errorf("registers = %d, want >= 2", res.Cost.NumRegs)
	}
	if res.Cost.RegArea != float64(res.Cost.NumRegs)*res.Datapath.Lib.RegArea {
		t.Error("register area inconsistent with count")
	}
}

func TestRegisterInputsOption(t *testing.T) {
	g := dfg.New("ri")
	g.AddInput("a")
	g.AddInput("b")
	g.AddOp("x", op.Add, "a", "b")
	without := synth(t, g, Options{CS: 1}).Cost.NumRegs
	g2 := dfg.New("ri2")
	g2.AddInput("a")
	g2.AddInput("b")
	g2.AddOp("x", op.Add, "a", "b")
	with := synth(t, g2, Options{CS: 1, RegisterInputs: true}).Cost.NumRegs
	if with <= without {
		t.Errorf("RegisterInputs: %d vs %d, want more registers with inputs", with, without)
	}
}

func TestWeightsShiftTradeoffs(t *testing.T) {
	// Emphasizing ALU cost must not produce a larger ALU area than the
	// balanced optimizer on the same problem.
	ex := benchmarks.Diffeq()
	cs := 6
	balanced := synth(t, benchmarks.Diffeq().Graph, Options{CS: cs}).Cost
	aluHeavy := synth(t, benchmarks.Diffeq().Graph, Options{
		CS:      cs,
		Weights: Weights{Time: 1, ALU: 50, Mux: 1, Reg: 1},
	}).Cost
	if aluHeavy.ALUArea > balanced.ALUArea {
		t.Errorf("ALU-weighted area %v > balanced %v", aluHeavy.ALUArea, balanced.ALUArea)
	}
	_ = ex
}

func TestRestrictedLibrary(t *testing.T) {
	lib := library.NCRLike()
	sub, err := lib.Restrict("fu_add", "fu_mul")
	if err != nil {
		t.Fatal(err)
	}
	g := dfg.New("r")
	g.AddInput("a")
	g.AddOp("x", op.Add, "a", "a")
	g.AddOp("y", op.Mul, "x", "a")
	res := synth(t, g, Options{CS: 2, Lib: sub})
	if res.Cost.NumALUs != 2 {
		t.Errorf("ALUs = %d, want 2", res.Cost.NumALUs)
	}
	// An op the restricted library cannot serve fails cleanly.
	g2 := dfg.New("r2")
	g2.AddInput("a")
	g2.AddOp("x", op.Div, "a", "a")
	if _, err := Synthesize(g2, Options{CS: 2, Lib: sub}); err == nil {
		t.Error("unservable op accepted")
	}
}

func TestPipelinedUnits(t *testing.T) {
	// Two 2-cycle muls with overlapping windows: on pipelined multipliers
	// they share one instance.
	g := dfg.New("pipe")
	g.AddInput("a")
	m1, _ := g.AddOp("m1", op.Mul, "a", "a")
	g.SetCycles(m1, 2)
	m2, _ := g.AddOp("m2", op.Mul, "a", "a")
	g.SetCycles(m2, 2)
	g.AddOp("s", op.Add, "m1", "m2")

	lib := library.NCRLike()
	pipedLib, err := lib.Restrict("pfu_mul", "fu_add")
	if err != nil {
		t.Fatal(err)
	}
	res := synth(t, g, Options{CS: 4, Lib: pipedLib, UsePipelinedUnits: true})
	if res.Cost.NumALUs != 2 { // one pipelined multiplier + one adder
		t.Errorf("ALUs = %d, want 2: %s", res.Cost.NumALUs, res.Datapath.ALUSummary())
	}
	// Without UsePipelinedUnits, the pipelined cell is not a candidate.
	if _, err := Synthesize(g, Options{CS: 4, Lib: pipedLib}); err == nil {
		t.Error("pipelined-only library accepted without UsePipelinedUnits")
	}
}

func TestMultifunctionMerging(t *testing.T) {
	// Add and sub at distinct steps with a shared-capable library: MFSA
	// should reuse one (+-) ALU rather than open two singles.
	lib := library.NCRLike()
	addsub, err := lib.Restrict(library.ComposeName(op.Add, op.Sub))
	if err != nil {
		t.Fatal(err)
	}
	g := dfg.New("merge")
	g.AddInput("a")
	g.AddOp("x", op.Add, "a", "a")
	g.AddOp("y", op.Sub, "x", "a")
	res := synth(t, g, Options{CS: 2, Lib: addsub})
	if res.Cost.NumALUs != 1 {
		t.Errorf("ALUs = %d, want 1 shared (+-)", res.Cost.NumALUs)
	}
	if got := res.Datapath.ALUSummary(); got != "(+-)" {
		t.Errorf("ALUSummary = %q", got)
	}
}

func TestChainedSynthesis(t *testing.T) {
	ex := benchmarks.Chained()
	res := synth(t, ex.Graph, Options{CS: 4, ClockNs: ex.ClockNs})
	if res.Schedule.ClockNs != ex.ClockNs {
		t.Error("ClockNs not propagated")
	}
	checkBindings(t, ex.Graph, res)
}

func TestMutualExclusionShares(t *testing.T) {
	g := dfg.New("mx")
	g.AddInput("a")
	x, _ := g.AddOp("x", op.Mul, "a", "a")
	y, _ := g.AddOp("y", op.Mul, "a", "a")
	g.AddOp("ux", op.Add, "x", "a")
	g.AddOp("uy", op.Sub, "y", "a")
	g.Tag(x, dfg.CondTag{Cond: 1, Branch: 0})
	g.Tag(y, dfg.CondTag{Cond: 1, Branch: 1})
	res := synth(t, g, Options{CS: 2})
	mulALUs := 0
	for _, a := range res.Datapath.ALUs {
		if a.Unit.Can(op.Mul) {
			mulALUs++
		}
	}
	if mulALUs != 1 {
		t.Errorf("multiplier ALUs = %d, want 1 (exclusive sharing)", mulALUs)
	}
}

func TestErrors(t *testing.T) {
	g := dfg.New("e")
	g.AddInput("a")
	g.AddOp("x", op.Add, "a", "a")
	if _, err := Synthesize(g, Options{}); err == nil {
		t.Error("missing CS accepted")
	}
	// Loop nodes are rejected with guidance.
	body := dfg.New("b")
	body.AddInput("p")
	body.AddOp("q", op.Add, "p", "p")
	g2 := dfg.New("e2")
	g2.AddInput("a")
	g2.AddLoop("l", body, "q", map[string]string{"p": "a"})
	if _, err := Synthesize(g2, Options{CS: 4}); err == nil {
		t.Error("loop node accepted")
	}
	// Infeasible time constraint.
	g3 := dfg.New("e3")
	g3.AddInput("a")
	g3.AddOp("x", op.Add, "a", "a")
	g3.AddOp("y", op.Add, "x", "x")
	if _, err := Synthesize(g3, Options{CS: 1}); err == nil {
		t.Error("cs below critical path accepted")
	}
}

func TestLimitsRespected(t *testing.T) {
	ex := benchmarks.Diffeq()
	limits := map[string]int{"fu_mul": 2}
	res, err := Synthesize(ex.Graph, Options{CS: 6, Limits: limits})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, a := range res.Datapath.ALUs {
		if a.Unit.Name == "fu_mul" {
			count++
		}
	}
	if count > 2 {
		t.Errorf("fu_mul instances = %d, limit 2", count)
	}
}

func TestAllBenchmarksSynthesize(t *testing.T) {
	for _, ex := range benchmarks.All() {
		for _, cs := range ex.TimeConstraints {
			opt := Options{CS: cs, ClockNs: ex.ClockNs}
			res, err := Synthesize(ex.Graph, opt)
			if err != nil {
				t.Errorf("%s cs=%d: %v", ex.Name, cs, err)
				continue
			}
			if err := res.Schedule.Verify(nil); err != nil {
				t.Errorf("%s cs=%d: %v", ex.Name, cs, err)
			}
			if err := res.Datapath.Validate(); err != nil {
				t.Errorf("%s cs=%d: %v", ex.Name, cs, err)
			}
		}
	}
}

func TestRandomGraphsSynthesize(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	kinds := []op.Kind{op.Add, op.Sub, op.Mul, op.Lt, op.And, op.Or}
	for trial := 0; trial < 25; trial++ {
		g := dfg.New(fmt.Sprintf("rs%d", trial))
		g.AddInput("i0")
		g.AddInput("i1")
		names := []string{"i0", "i1"}
		l := 8 + r.Intn(18)
		for i := 0; i < l; i++ {
			k := kinds[r.Intn(len(kinds))]
			name := fmt.Sprintf("n%d", i)
			if _, err := g.AddOp(name, k, names[r.Intn(len(names))], names[r.Intn(len(names))]); err != nil {
				t.Fatal(err)
			}
			names = append(names, name)
		}
		cs := g.CriticalPathCycles() + r.Intn(4)
		style := Style1
		if trial%2 == 1 {
			style = Style2
		}
		res, err := Synthesize(g, Options{CS: cs, Style: style})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Schedule.Verify(nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Datapath.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if style == Style2 {
			if err := VerifyStyle2(g, res.Datapath); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		// Cost must be consistent: totals add up.
		c := res.Cost
		if c.Total != c.ALUArea+c.MuxArea+c.RegArea {
			t.Fatalf("trial %d: cost breakdown inconsistent: %+v", trial, c)
		}
	}
}

func TestScheduleTypesAreUnitNames(t *testing.T) {
	ex := benchmarks.Facet()
	res := synth(t, ex.Graph, Options{CS: 5})
	lib := library.NCRLike()
	for _, p := range res.Schedule.Placements {
		if _, ok := lib.Lookup(p.Type); !ok {
			t.Errorf("placement type %q is not a library unit", p.Type)
		}
	}
	_ = sched.Placement{}
}
