package mfsa

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/grid"
	"repro/internal/op"
	"repro/internal/rtl"
)

// indexCase is one (graph, options) configuration of the index on/off
// cross-check.
type indexCase struct {
	name string
	g    *dfg.Graph
	opt  Options
}

func indexCases(t *testing.T) []indexCase {
	t.Helper()
	var cases []indexCase
	for _, ex := range benchmarks.All() {
		cs := ex.TimeConstraints[0]
		base := Options{CS: cs, ClockNs: ex.ClockNs}
		cases = append(cases,
			indexCase{fmt.Sprintf("%s/T=%d", ex.Name, cs), ex.Graph, base},
			indexCase{fmt.Sprintf("%s/T=%d/style2", ex.Name, cs), ex.Graph,
				Options{CS: cs, ClockNs: ex.ClockNs, Style: Style2}},
			indexCase{fmt.Sprintf("%s/T=%d/pipelined-units", ex.Name, cs), ex.Graph,
				Options{CS: cs, ClockNs: ex.ClockNs, UsePipelinedUnits: true}},
		)
		// Chaining toggled, as in mfs's equivalence suite.
		alt := base
		if ex.ClockNs > 0 {
			alt.ClockNs = 0
			if cp := ex.Graph.CriticalPathCycles(); cp > alt.CS {
				alt.CS = cp
			}
		} else {
			alt.ClockNs = 100
		}
		cases = append(cases,
			indexCase{fmt.Sprintf("%s/T=%d/chain-toggled", ex.Name, alt.CS), ex.Graph, alt})
		if ex.Latency != nil {
			lat := base
			lat.Latency = ex.Latency(cs)
			cases = append(cases,
				indexCase{fmt.Sprintf("%s/T=%d/latency", ex.Name, cs), ex.Graph, lat})
		}
	}
	// Exclusion variant: conditional sharing is the one configuration
	// where the index walk must fall back to the per-occupant CanPlace
	// check on occupied bits.
	g := dfg.New("mx-idx")
	if err := g.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	x, _ := g.AddOp("x", op.Mul, "a", "a")
	y, _ := g.AddOp("y", op.Mul, "a", "a")
	g.AddOp("ux", op.Add, "x", "a")
	g.AddOp("uy", op.Sub, "y", "a")
	g.Tag(x, dfg.CondTag{Cond: 1, Branch: 0})
	g.Tag(y, dfg.CondTag{Cond: 1, Branch: 1})
	cases = append(cases, indexCase{"mx/T=2/exclusion", g, Options{CS: 2}})
	return cases
}

// TestIndexedSynthesisMatchesDisabledIndex is the tentpole's cross-check
// at the MFSA layer: with grid.DisableIndex set, the full synthesis —
// schedule, recorded trace, bound netlist, and cost — must be
// bit-identical to the indexed run on every benchmark × style ×
// chaining/pipelining/latency/exclusion variant.
func TestIndexedSynthesisMatchesDisabledIndex(t *testing.T) {
	for _, tc := range indexCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			fast, err := Synthesize(tc.g, tc.opt)
			if err != nil {
				t.Fatalf("indexed: %v", err)
			}
			grid.DisableIndex = true
			defer func() { grid.DisableIndex = false }()
			slow, err := Synthesize(tc.g, tc.opt)
			grid.DisableIndex = false
			if err != nil {
				t.Fatalf("index disabled: %v", err)
			}
			if !reflect.DeepEqual(fast.Schedule.Placements, slow.Schedule.Placements) {
				t.Errorf("placements diverge with the index disabled")
			}
			if !fast.Schedule.Trace.Equal(slow.Schedule.Trace) {
				t.Errorf("traces diverge with the index disabled")
			}
			compareDatapaths(t, fast.Datapath, slow.Datapath)
			if fast.Cost != slow.Cost {
				t.Errorf("cost diverges: %+v vs %+v", fast.Cost, slow.Cost)
			}
		})
	}
}

// compareDatapaths asserts netlist bit-identity: same ALUs in the same
// order with identical units, bindings and mux input lists, and the same
// register packing.
func compareDatapaths(t *testing.T, a, b *rtl.Datapath) {
	t.Helper()
	if len(a.ALUs) != len(b.ALUs) {
		t.Fatalf("ALU count diverges: %d vs %d", len(a.ALUs), len(b.ALUs))
	}
	for i := range a.ALUs {
		x, y := a.ALUs[i], b.ALUs[i]
		if x.Name != y.Name || x.Unit.Name != y.Unit.Name {
			t.Fatalf("ALU %d diverges: %s(%s) vs %s(%s)", i, x.Name, x.Unit.Name, y.Name, y.Unit.Name)
		}
		if !reflect.DeepEqual(x.Ops, y.Ops) {
			t.Fatalf("ALU %s bindings diverge", x.Name)
		}
		if !reflect.DeepEqual(x.L1, y.L1) || !reflect.DeepEqual(x.L2, y.L2) {
			t.Fatalf("ALU %s mux input lists diverge", x.Name)
		}
	}
	if !reflect.DeepEqual(a.Registers, b.Registers) {
		t.Fatalf("register packing diverges")
	}
}
