// Package mfsa implements Move Frame Scheduling-Allocation (§4), the
// paper's simultaneous scheduling and allocation algorithm. It reuses the
// move-frame machinery of MFS but searches a three-dimensional space —
// control step × ALU instance × ALU type from the cell library — guided
// by the dynamic Liapunov function
//
//	V = Σ ( w_T·C·y + w_A·f^ALU + w_M·f^MUX + w_R·f^REG )
//
// where f^ALU is the incremental cost of opening a new ALU instance (zero
// for reuse), f^MUX the incremental multiplexer cost under best-case input
// sharing (§5.6, including the commutative-swap optimization), and f^REG
// the incremental register cost from the left-edge lifetime packer
// (§5.8). The constant C dominates every possible hardware contribution
// so control step t is still preferred over t+1 — the time-constrained
// guarantee of §3.1 — unless the user reweights the terms.
//
// Two design styles are supported (§4.2): style 1 is the unrestricted
// datapath, style 2 forbids binding an operation to an ALU that already
// executes one of its direct predecessors or successors, which removes
// self-loops around ALUs and yields the self-testable structures of
// [18][20] at a small cost overhead.
package mfsa

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dfg"
	"repro/internal/diag"
	"repro/internal/grid"
	"repro/internal/liapunov"
	"repro/internal/library"
	"repro/internal/op"
	"repro/internal/rtl"
	"repro/internal/sched"
)

// Style selects the RTL structure restriction.
type Style int

const (
	// Style1 is the conventional, unrestricted datapath.
	Style1 Style = 1
	// Style2 forbids an operation from sharing an ALU with any of its
	// direct predecessors or successors (no self-loop around an ALU).
	Style2 Style = 2
)

// Weights are the user emphasis factors of §4.1's weighted Liapunov
// function. The zero value is replaced by the overall optimizer
// (all weights 1).
type Weights struct {
	Time, ALU, Mux, Reg float64
}

func (w Weights) orDefault() Weights {
	if w == (Weights{}) {
		return Weights{1, 1, 1, 1}
	}
	return w
}

// Options configures a synthesis run.
type Options struct {
	// CS is the time constraint in control steps (required).
	CS int

	// Lib is the cell library; nil selects library.NCRLike().
	Lib *library.Library

	// Style selects the datapath restriction; 0 means Style1.
	Style Style

	// Weights reweight the Liapunov terms; zero value = all ones.
	Weights Weights

	// ClockNs enables chaining (§5.4); Latency enables functional
	// pipelining (§5.5.2), both as in MFS.
	ClockNs float64
	Latency int

	// UsePipelinedUnits admits structurally pipelined library cells for
	// operations whose cycle count matches the cell's stage count
	// (§5.5.1).
	UsePipelinedUnits bool

	// Limits caps instances per library unit name.
	Limits map[string]int

	// RegisterInputs, when true, also allocates registers for primary
	// inputs (by default inputs are externally registered ports, keeping
	// register counts comparable to Table 2).
	RegisterInputs bool

	// NoTrace skips recording the placement trajectory (Schedule.Trace)
	// and the per-step candidate sets. The schedule and datapath are
	// bit-identical either way; the run just drops the audit metadata, so
	// lint's trace-replay analyzers have nothing to check and the result
	// cannot seed ResumeCtx. Intended for very large graphs, where trace
	// materialization dominates the runtime.
	NoTrace bool
}

// Result is a completed synthesis: the schedule (FU types are library
// unit names), the bound RTL datapath, and its cost breakdown.
type Result struct {
	Schedule *sched.Schedule
	Datapath *rtl.Datapath
	Cost     rtl.Cost
}

// Synthesize runs MFSA on g.
func Synthesize(g *dfg.Graph, opt Options) (*Result, error) {
	return SynthesizeCtx(context.Background(), g, opt)
}

// SynthesizeCtx is Synthesize with cancellation: ctx is checked before
// every operation placement, so a cancelled run returns ctx.Err() within
// one placement's worth of work instead of finishing the whole design.
func SynthesizeCtx(ctx context.Context, g *dfg.Graph, opt Options) (*Result, error) {
	opt, unitsByOp, err := prepare(g, opt)
	if err != nil {
		return nil, err
	}
	frames, err := sched.ComputeFrames(g, opt.CS, opt.ClockNs)
	if err != nil {
		return nil, fmt.Errorf("mfsa: %w", err)
	}
	return synthesize(ctx, g, opt, frames, unitsByOp)
}

// prepare validates the graph, library and options, normalizes the
// defaulted option fields, and builds the candidate-unit cache. Shared by
// the from-scratch and resume entry points.
func prepare(g *dfg.Graph, opt Options) (Options, map[op.Kind][]*library.Unit, error) {
	if err := g.Validate(); err != nil {
		return opt, nil, fmt.Errorf("mfsa: %w", err)
	}
	if opt.CS < 1 {
		return opt, nil, fmt.Errorf("mfsa: a time constraint is required")
	}
	if opt.Lib == nil {
		opt.Lib = library.NCRLike()
	}
	if err := opt.Lib.Validate(); err != nil {
		return opt, nil, fmt.Errorf("mfsa: %w", err)
	}
	if opt.Style == 0 {
		opt.Style = Style1
	}
	unitsByOp := make(map[op.Kind][]*library.Unit)
	for _, n := range g.Nodes() {
		if n.IsLoop() {
			return opt, nil, fmt.Errorf("mfsa: fold loops with mfs.ScheduleLoops and synthesize bodies separately (node %q)", n.Name)
		}
		us, ok := unitsByOp[n.Op]
		if !ok {
			us = candidateUnits(opt, n)
			unitsByOp[n.Op] = us
		}
		if len(us) == 0 {
			return opt, nil, fmt.Errorf("mfsa: library has no unit for %q (op %v, %d cycles)", n.Name, n.Op, n.Cycles)
		}
	}
	return opt, unitsByOp, nil
}

// synthesize runs the main placement loop over prepared inputs.
func synthesize(ctx context.Context, g *dfg.Graph, opt Options, frames sched.Frames, unitsByOp map[op.Kind][]*library.Unit) (*Result, error) {
	s := newState(g, opt, frames, unitsByOp)
	for _, id := range sched.PriorityOrder(g, frames) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.placeOne(id); err != nil {
			return nil, err
		}
	}
	return s.finish()
}

// candidateUnits returns the library cells that can execute node n under
// the options: non-pipelined cells always qualify; pipelined cells only
// when admitted and their depth matches the operation's cycle count.
func candidateUnits(opt Options, n *dfg.Node) []*library.Unit {
	var out []*library.Unit
	for _, u := range opt.Lib.UnitsFor(n.Op) {
		if u.Pipelined() {
			if opt.UsePipelinedUnits && u.Stages == n.Cycles {
				out = append(out, u)
			}
			continue
		}
		out = append(out, u)
	}
	return out
}

type state struct {
	g      *dfg.Graph
	opt    Options
	w      Weights
	c      float64 // time-dominance constant
	frames sched.Frames

	tables    map[string]*grid.Table // per unit name, created lazily by tableOf
	maxInst   map[string]int
	current   map[string]int
	pipeTypes []string // capable pipelined unit names (for Schedule.PipelinedTypes)

	// placed and steps are indexed by dfg.NodeID (dense from 0);
	// Step == 0 / steps[id] == 0 means unplaced (steps are 1-based).
	// steps feeds ChainFits directly and is maintained on commit.
	placed []sched.Placement
	steps  []int
	trace  []sched.TraceStep

	dp   *rtl.Datapath
	alus map[cell]*rtl.ALU // live ALU instances by (unit, column)

	// Incremental value-lifetime tracking behind the f^REG term. life
	// holds the committed signals' lifetimes, cnt[t] counts how many of
	// their stored intervals cover the boundary span [t, t+1), and
	// regBase caches max(cnt). Left-edge packing is optimal for interval
	// lifetimes — the register count IS the maximum overlap — so regBase
	// always equals len(rtl.PackRegisters(s.intervals(nil, 0))) without
	// rebuilding and packing the interval list per candidate. Maintained
	// on commit; regDelta perturbs cnt in place and reverts.
	//
	// hist[v] counts the entries of cnt holding value v, and cntMax is an
	// upper bound on max(cnt) that maxCnt settles lazily, so the maximum
	// is O(1) amortized per perturbation instead of an O(CS) rescan per
	// candidate — the dominant regDelta cost on large designs.
	life    map[string]*lifetime
	cnt     []int
	hist    []int
	cntMax  int
	regBase int

	// regDelta memo for the current candidate evaluation (one node, many
	// unit×position candidates): f^REG depends only on the step, so each
	// distinct step is computed once per generation. Bumped by
	// bestCandidate and bindOne.
	regMemo    []int
	regMemoGen []int
	memoGen    int

	// Column-term memo for the current (node, unit) evaluation scope
	// (beginUnitEval): f^ALU, f^MUX and the commutative-swap flag depend
	// only on the column — the ALU instance and its input lists, frozen
	// until commit — never on the step, so within one unit's position
	// walk each column's terms are computed once instead of once per
	// (step, column) candidate. The memoized values are the exact floats
	// the direct evaluation produces (same muxAfter call, reused), so
	// value()'s combined energy is bit-identical.
	colMemoGen []int
	colALU     []float64
	colMux     []float64
	colSwap    []bool
	colGen     int

	// boundCols[unit][idx] mirrors "an ALU exists at (unit, idx)" — the
	// alus map keyed for the per-position fresh-column test, which a map
	// probe per candidate made one of the hottest lines on large graphs.
	// Maintained alongside alus by commit; ALUs are never removed.
	boundCols map[string][]bool

	// excl caches g.HasExclusions() for the run: when false, the window
	// walk can treat every occupied index bit as illegal without
	// consulting the occupant lists (grid.Table.ScanPlaceable).
	excl bool

	unitsByOp map[op.Kind][]*library.Unit // candidateUnits cache
	posBuf    []grid.Pos                  // movePositions scratch
	candBuf   []sched.TraceCandidate      // candidate-evaluation scratch; commit copies
	muxMemo   []float64                   // muxArea's Lib.MuxArea prefix cache
}

// lifetime is one committed signal's storage life: born at the end of
// control step birth, last consumed during step death (0 = no consumer
// yet, in which case the value is held one boundary).
type lifetime struct {
	birth, death int
}

// span returns the half-open boundary range [lo, hi) during which the
// signal occupies a register, mirroring intervals(): no consumer means
// one boundary of storage; a consumer chained into the birth step means
// none (hi == lo).
//
//hls:noalloc
func (lt *lifetime) span() (lo, hi int) {
	d := lt.death
	if d == 0 {
		d = lt.birth + 1
	}
	if d < lt.birth {
		d = lt.birth
	}
	return lt.birth, d
}

type cell struct {
	unit  string
	index int
}

// newState builds the scheduler-allocator state. unitsByOp may carry a
// candidate-unit cache the caller already built while validating; nil
// starts an empty one.
func newState(g *dfg.Graph, opt Options, frames sched.Frames, unitsByOp map[op.Kind][]*library.Unit) *state {
	if unitsByOp == nil {
		unitsByOp = make(map[op.Kind][]*library.Unit)
	}
	s := &state{
		g: g, opt: opt,
		w:         opt.Weights.orDefault(),
		frames:    frames,
		tables:    make(map[string]*grid.Table),
		maxInst:   make(map[string]int),
		current:   make(map[string]int),
		placed:    make([]sched.Placement, g.Len()),
		steps:     make([]int, g.Len()),
		dp:        rtl.NewDatapath(opt.Lib),
		alus:      make(map[cell]*rtl.ALU),
		boundCols: make(map[string][]bool),
		life:      make(map[string]*lifetime, g.Len()),
		unitsByOp: unitsByOp,
		excl:      g.HasExclusions(),
	}
	if !opt.NoTrace {
		// One step per node; sized up front so the per-commit append
		// never reallocates the whole trajectory on large graphs.
		s.trace = make([]sched.TraceStep, 0, g.Len())
	}
	s.c = liapunov.DominanceConstant(
		opt.Lib.MaxUnitArea(),
		2*opt.Lib.MaxMuxStep(),
		2*opt.Lib.RegArea,
	)
	// Lifetime boundaries run from 0 (inputs) to the last finish step; a
	// legal placement finishes by CS, but size past it so latency-folded
	// multi-cycle footprints never force a grow inside regDelta.
	maxCycles := 1
	for _, n := range g.Nodes() {
		if n.Cycles > maxCycles {
			maxCycles = n.Cycles
		}
	}
	s.cnt = make([]int, opt.CS+maxCycles+2)
	s.hist = make([]int, 1, 16)
	s.hist[0] = len(s.cnt)
	s.regMemo = make([]int, opt.CS+2)
	s.regMemoGen = make([]int, opt.CS+2)
	if opt.RegisterInputs {
		for _, in := range g.Inputs() {
			s.life[in] = &lifetime{birth: 0}
			s.addSpan(0, 1, 1)
		}
		s.regBase = s.maxCnt()
	}
	s.maxInst, s.current, _ = instanceBounds(g, opt, s.unitsByOp)
	for _, u := range opt.Lib.Units() {
		if s.maxInst[u.Name] > 0 && u.Pipelined() {
			s.pipeTypes = append(s.pipeTypes, u.Name)
		}
	}
	return s
}

// instanceBounds computes the per-unit instance cap and the initial
// instance estimate a run over g starts from: a unit can never need more
// instances than the operations it can serve (user limits tighten that),
// and the starting estimate is the ⌈N_j/steps⌉ floor of MFS step 4, with
// N_j counting only the operations whose cheapest implementation is this
// unit. Units that are nobody's first choice (dearer multi-function ALUs)
// start at zero instances: they enter the datapath through the
// redundant-frame growth mechanism or by zero-cost reuse, never as a
// gratuitous early-step purchase. ok is false when some node has no
// capable unit at all (possible only for a graph the caller did not
// validate against this library, e.g. a resume source from another run).
//
//hls:sharedok unitsByOp is the run's own lazily-filled candidate cache (made in prepare); its slices are fresh candidateUnits appends, never library storage
func instanceBounds(g *dfg.Graph, opt Options, unitsByOp map[op.Kind][]*library.Unit) (maxInst, current map[string]int, ok bool) {
	span := opt.CS
	if opt.Latency > 0 && opt.Latency < span {
		span = opt.Latency
	}
	capable := make(map[string]int)
	primary := make(map[string]int)
	for _, n := range g.Nodes() {
		units, cached := unitsByOp[n.Op]
		if !cached {
			units = candidateUnits(opt, n)
			unitsByOp[n.Op] = units
		}
		var cheapest *library.Unit
		for _, u := range units {
			capable[u.Name]++
			if cheapest == nil || u.Area < cheapest.Area {
				cheapest = u
			}
		}
		if cheapest == nil {
			return nil, nil, false
		}
		primary[cheapest.Name]++
	}
	maxInst = make(map[string]int)
	current = make(map[string]int)
	for _, u := range opt.Lib.Units() {
		m := capable[u.Name]
		if lim, ok := opt.Limits[u.Name]; ok && lim < m {
			m = lim
		}
		if m == 0 {
			continue
		}
		maxInst[u.Name] = m
		cur := (primary[u.Name] + span - 1) / span
		if cur > m {
			cur = m
		}
		current[u.Name] = cur
	}
	return maxInst, current, true
}

// tableOf returns the unit's occupancy table, creating it on first use:
// most capable units are never grown past zero instances and never need
// one. A unit capped to zero instances gets (and caches) a nil table,
// exactly what the eager construction used to leave in the map for it.
//
// Tables start with zero columns and widen on demand (probe sites Grow
// them to the index range they are about to touch). Sizing them to
// maxInst up front looks harmless but is quadratic in disguise: for an
// unbounded unit maxInst is the capable-node COUNT, so a 100k-node graph
// would zero gigabytes of cells for columns no placement ever reaches.
func (s *state) tableOf(u *library.Unit) *grid.Table {
	t, ok := s.tables[u.Name]
	if ok {
		return t
	}
	if s.maxInst[u.Name] > 0 {
		t = grid.NewTable(u.Name, s.opt.CS, 0)
		t.Latency = s.opt.Latency
		t.Pipelined = u.Pipelined()
	}
	s.tables[u.Name] = t
	return t
}

// unitsFor is candidateUnits memoized per operation kind: the candidate
// set depends only on n.Op (and the fixed options), and the same few
// kinds recur across the whole graph.
func (s *state) unitsFor(n *dfg.Node) []*library.Unit {
	if u, ok := s.unitsByOp[n.Op]; ok {
		return u
	}
	u := candidateUnits(s.opt, n)
	s.unitsByOp[n.Op] = u
	return u
}

// placeOne evaluates the dynamic Liapunov function over every empty
// move-frame position of every candidate ALU type and commits the
// minimum (§4.2 step 4).
func (s *state) placeOne(id dfg.NodeID) error {
	n := s.g.Node(id)
	units := s.unitsFor(n)
	var grown []string // types grown by local rescheduling, for the trace
	for {
		best, evaluated, ok := s.bestCandidate(n, units)
		if ok {
			return s.commit(n, best, evaluated, grown)
		}
		// Local rescheduling: open one more instance of exactly one
		// capable type — the cheapest with headroom — and re-frame.
		// Growing one type at a time keeps the redundant frame tight for
		// every other operation; growing them all would license
		// gratuitous early-step ALU purchases elsewhere.
		var grow *library.Unit
		for _, u := range units {
			if s.current[u.Name] >= s.maxInst[u.Name] {
				continue
			}
			if grow == nil || u.Area < grow.Area ||
				(u.Area == grow.Area && u.Name < grow.Name) {
				grow = u
			}
		}
		if grow == nil {
			return fmt.Errorf("mfsa: %s: no position for %q within %d steps", s.g.Name, n.Name, s.opt.CS)
		}
		s.current[grow.Name]++
		grown = append(grown, grow.Name)
	}
}

// candidate is one evaluated (unit, position) choice.
type candidate struct {
	unit    *library.Unit
	pos     grid.Pos
	value   float64
	swapped bool
}

func (s *state) bestCandidate(n *dfg.Node, units []*library.Unit) (candidate, []sched.TraceCandidate, bool) {
	s.memoGen++ // new candidate evaluation: invalidate the regDelta memo
	lo, hi := s.window(n)
	var best candidate
	evaluated := s.candBuf[:0] // commit copies what it keeps
	found := false
	for _, u := range units {
		if s.maxInst[u.Name] == 0 {
			continue // capped to zero instances (Limits); tableOf is nil
		}
		table := s.tableOf(u)
		cur := s.current[u.Name]
		table.Grow(cur) // movePositions probes indexes 1..cur
		s.beginUnitEval(cur)
		bc := s.boundCols[u.Name]
		// Fresh-column dedup: a column with no ALU instance yet has never
		// been placed into, so every fresh column of this unit is an empty,
		// interchangeable copy — same occupancy, same f^ALU (full unit
		// area), no mux lists, and an f^REG that depends only on the step.
		// The tie-break (less: step, then name, then lowest index) would
		// always pick the lowest-indexed one, so only the first fresh
		// column per step is evaluated; the rest are skipped losslessly.
		freshStep := -1
		for _, p := range s.movePositions(table, n, lo, hi, cur) {
			if p.Index >= len(bc) || !bc[p.Index] {
				if p.Step == freshStep {
					continue
				}
				freshStep = p.Step
			}
			if s.opt.ClockNs > 0 && !sched.ChainFits(s.g, s.opt.ClockNs, s.steps, n.ID, p.Step) {
				continue
			}
			if s.opt.Style == Style2 && s.neighborsOnALU(n, cell{u.Name, p.Index}) {
				continue
			}
			v, swapped := s.value(n, u, p)
			cand := candidate{unit: u, pos: p, value: v, swapped: swapped}
			if !s.opt.NoTrace {
				evaluated = append(evaluated, sched.TraceCandidate{Pos: p, Type: u.Name, Energy: v})
			}
			if !found || less(cand, best) {
				best, found = cand, true
			}
		}
	}
	s.candBuf = evaluated
	return best, evaluated, found
}

func less(a, b candidate) bool {
	if a.value != b.value {
		return a.value < b.value
	}
	if a.pos.Step != b.pos.Step {
		return a.pos.Step < b.pos.Step
	}
	if a.unit.Name != b.unit.Name {
		return a.unit.Name < b.unit.Name
	}
	return a.pos.Index < b.pos.Index
}

// window returns the node's current time frame, tightened by placed
// predecessors (successors are never placed first; see sched.PriorityOrder).
func (s *state) window(n *dfg.Node) (int, int) {
	f := s.frames[n.ID]
	lo, hi := f.ASAP, f.ALAP
	for _, pid := range n.Preds() {
		pp := s.placed[pid]
		if pp.Step == 0 {
			continue
		}
		pred := s.g.Node(pid)
		bound := pp.Step + pred.Cycles
		if s.opt.ClockNs > 0 && pred.Cycles == 1 && n.Cycles == 1 {
			bound = pp.Step
		}
		if bound > lo {
			lo = bound
		}
	}
	return lo, hi
}

// movePositions lists the free positions of the unit's move frame
// MF = PF − RF (FF is folded into the window's lower bound). The walk
// (grid.Table.ScanPlaceable, row-major) emits positions in (step, index)
// order by construction — the historical nested CanPlace loops' order —
// so the list is already deterministically sorted; the occupancy index
// just skips the provably-occupied cells in O(window/64) word scans.
func (s *state) movePositions(table *grid.Table, n *dfg.Node, lo, hi, cur int) []grid.Pos {
	out := s.posBuf[:0] // callers consume the list before the next call
	table.ScanPlaceable(s.g, n.ID, s.excl, grid.RowMajor, lo, hi, cur, n.Cycles, func(p grid.Pos) bool {
		out = append(out, p)
		return true
	})
	s.posBuf = out
	return out
}

// beginUnitEval opens a (node, unit) evaluation scope for the column-term
// memo, invalidating the previous scope's entries and sizing the memo for
// columns 1..cur.
func (s *state) beginUnitEval(cur int) {
	s.colGen++
	if len(s.colMemoGen) <= cur {
		grow := cur + 1 - len(s.colMemoGen)
		s.colMemoGen = append(s.colMemoGen, make([]int, grow)...)
		s.colALU = append(s.colALU, make([]float64, grow)...)
		s.colMux = append(s.colMux, make([]float64, grow)...)
		s.colSwap = append(s.colSwap, make([]bool, grow)...)
	}
}

// colTerms returns the step-independent terms of value() for a column of
// the current evaluation scope's unit — f^ALU, f^MUX and the swap flag —
// computing them on first touch and replaying the memo after: the ALU
// instance set and every input list are frozen between commits, so the
// terms cannot change within one scope.
func (s *state) colTerms(n *dfg.Node, u *library.Unit, idx int) (fALU, fMux float64, swapped bool) {
	if s.colMemoGen[idx] == s.colGen {
		return s.colALU[idx], s.colMux[idx], s.colSwap[idx]
	}
	if a, exists := s.alus[cell{u.Name, idx}]; exists {
		before := s.muxArea(len(a.L1)) + s.muxArea(len(a.L2))
		g1, sw := s.muxAfter(a, n)
		fMux = g1 - before
		swapped = sw
	} else {
		// A fresh ALU: full unit area, and no mux yet (one source per port).
		fALU = u.Area
	}
	s.colALU[idx], s.colMux[idx], s.colSwap[idx] = fALU, fMux, swapped
	s.colMemoGen[idx] = s.colGen
	return fALU, fMux, swapped
}

// neighborsOnALU reports whether the ALU instance already executes a
// direct predecessor or successor of n (style 2's forbidden self-loop).
func (s *state) neighborsOnALU(n *dfg.Node, c cell) bool {
	a, ok := s.alus[c]
	if !ok {
		return false
	}
	for _, pid := range n.Preds() {
		if a.HasNode(pid) {
			return true
		}
	}
	for _, sid := range n.Succs() {
		if a.HasNode(sid) {
			return true
		}
	}
	return false
}

// value evaluates the weighted dynamic Liapunov function for one
// candidate position. The column terms come from the colTerms memo and
// the step term from the regDelta memo; the combining expression is the
// historical one, verbatim, so the energies are bit-identical to the
// unmemoized evaluation.
func (s *state) value(n *dfg.Node, u *library.Unit, p grid.Pos) (float64, bool) {
	fTime := s.c * float64(p.Step)
	fALU, fMux, swapped := s.colTerms(n, u, p.Index)
	fReg := float64(s.regDelta(n, p.Step)) * s.opt.Lib.RegArea

	v := s.w.Time*fTime + s.w.ALU*fALU + s.w.Mux*fMux + s.w.Reg*fReg
	return v, swapped
}

// muxArea is Lib.MuxArea behind a per-run prefix cache. The library
// evaluates MuxArea(n) by summing increments 3..n on every call — O(n)
// per probe, against input lists that grow with the design, which made
// it the dominant cost of large syntheses. Each cache entry is filled by
// that same direct evaluation, so every returned float is bit-identical
// to an uncached call; the fill is a one-time O(max²) over the widest
// list ever probed, noise next to the O(n) per candidate it replaces.
func (s *state) muxArea(n int) float64 {
	if n < len(s.muxMemo) {
		return s.muxMemo[n]
	}
	for r := len(s.muxMemo); r <= n; r++ {
		s.muxMemo = append(s.muxMemo, s.opt.Lib.MuxArea(r))
	}
	return s.muxMemo[n]
}

// muxAfter returns the two-port mux area after adding n to ALU a with the
// best operand orientation. Membership probes go through the ALU's O(1)
// memoized sets — this runs once per (reused-ALU, position) candidate, so
// a list scan here is quadratic over a large design's bindings.
func (s *state) muxAfter(a *rtl.ALU, n *dfg.Node) (area float64, swapped bool) {
	l1, l2 := len(a.L1), len(a.L2)
	args := n.Args
	count := func(present bool) int {
		if present {
			return 0
		}
		return 1
	}
	if len(args) == 1 {
		return s.muxArea(l1+count(a.InL1(args[0]))) + s.muxArea(l2), false
	}
	direct := s.muxArea(l1+count(a.InL1(args[0]))) + s.muxArea(l2+count(a.InL2(args[1])))
	if !n.Op.Commutative() {
		return direct, false
	}
	crossed := s.muxArea(l1+count(a.InL1(args[1]))) + s.muxArea(l2+count(a.InL2(args[0])))
	if crossed < direct {
		return crossed, true
	}
	return direct, false
}

// checkRegDelta, when set (by the equivalence test), cross-checks every
// incremental regDelta answer against the direct pack-and-diff oracle.
var checkRegDelta = false

// regDelta returns how many additional registers the left-edge packer
// needs when n consumes its inputs at the given step (§4.1's f^REG: zero,
// one or two). The committed overlap counts are perturbed in place with
// n's consumptions, scanned for their maximum — the left-edge register
// count — and reverted; no interval list is built and nothing allocates.
// The answer depends only on the step, so it is memoized per candidate
// evaluation (memoGen).
//
//hls:noalloc
func (s *state) regDelta(n *dfg.Node, step int) int {
	if s.regMemoGen[step] == s.memoGen {
		return s.regMemo[step]
	}
	var touched [4]*lifetime
	var saved [4]int
	nt := 0
	overflow := false
	for _, a := range n.Args {
		lt := s.life[a]
		if lt == nil || step <= lt.death {
			continue
		}
		if nt == len(touched) {
			overflow = true // more live args than the revert buffer holds
			break
		}
		touched[nt], saved[nt] = lt, lt.death
		nt++
		s.consume(lt, step)
	}
	if overflow {
		// Never with binary ops; restore and let the oracle do it.
		for i := nt - 1; i >= 0; i-- {
			s.revert(touched[i], saved[i])
		}
		//hls:allocok cold fallback for >4 live args — unreachable with the library's binary ops
		return s.regDeltaSlow(n, step)
	}
	after := s.maxCnt()
	for i := nt - 1; i >= 0; i-- {
		s.revert(touched[i], saved[i])
	}
	d := after - s.regBase
	if d < 0 {
		d = 0
	}
	if checkRegDelta {
		//hls:allocok oracle cross-check, enabled only by the equivalence test
		if want := s.regDeltaSlow(n, step); want != d {
			panic(fmt.Sprintf("mfsa: regDelta(%s, %d) = %d, pack-and-diff oracle says %d",
				n.Name, step, d, want))
		}
	}
	s.regMemo[step], s.regMemoGen[step] = d, s.memoGen
	return d
}

// regDeltaSlow is the direct evaluation regDelta replaces — rebuild the
// interval list with and without the candidate consumption, left-edge
// pack both, diff the counts. Kept as the oracle the equivalence test
// (and the rare >4-arg fallback) measures the incremental path against.
func (s *state) regDeltaSlow(n *dfg.Node, step int) int {
	before := len(rtl.PackRegisters(s.intervals(nil, 0)))
	after := len(rtl.PackRegisters(s.intervals(n, step)))
	d := after - before
	if d < 0 {
		d = 0
	}
	return d
}

// consume extends lt's life to a consumer at the given step, updating the
// overlap counts. A first consumer chained into the birth step shrinks
// the span: the one-boundary hold of a value nobody read yet disappears.
//
//hls:noalloc
func (s *state) consume(lt *lifetime, step int) {
	if step <= lt.death {
		return
	}
	_, hi0 := lt.span()
	lt.death = step
	_, hi1 := lt.span()
	switch {
	case hi1 > hi0:
		s.addSpan(hi0, hi1, 1)
	case hi1 < hi0:
		s.addSpan(hi1, hi0, -1)
	}
}

// revert undoes a consume by restoring the saved death step.
//
//hls:noalloc
func (s *state) revert(lt *lifetime, death int) {
	_, hi0 := lt.span()
	lt.death = death
	_, hi1 := lt.span()
	switch {
	case hi1 > hi0:
		s.addSpan(hi0, hi1, 1)
	case hi1 < hi0:
		s.addSpan(hi1, hi0, -1)
	}
}

// addSpan adds d to every overlap count in [lo, hi), keeping the value
// histogram behind maxCnt in step.
//
//hls:noalloc
func (s *state) addSpan(lo, hi, d int) {
	if hi > len(s.cnt) {
		grow := hi - len(s.cnt)
		//hls:allocok amortized grow of the overlap-count scratch; steady-state spans stay in place
		s.cnt = append(s.cnt, make([]int, grow)...)
		s.hist[0] += grow
	}
	for t := lo; t < hi; t++ {
		v := s.cnt[t] + d
		s.hist[s.cnt[t]]--
		for v >= len(s.hist) {
			//hls:allocok amortized grow of the histogram scratch, bounded by the peak register count
			s.hist = append(s.hist, 0)
		}
		s.hist[v]++
		s.cnt[t] = v
		if v > s.cntMax {
			s.cntMax = v
		}
	}
}

// maxCnt returns the maximum overlap — the left-edge register count of
// the intervals the counts describe. cntMax only grows eagerly; after
// decrements it is settled here by walking down the (typically short)
// empty histogram tail.
//
//hls:noalloc
func (s *state) maxCnt() int {
	for s.cntMax > 0 && s.hist[s.cntMax] == 0 {
		s.cntMax--
	}
	return s.cntMax
}

// intervals derives the value lifetimes of the committed placement,
// optionally extending them with `extra` consuming its inputs at
// extraStep. Outputs with no placed consumer are held one boundary.
func (s *state) intervals(extra *dfg.Node, extraStep int) []rtl.Interval {
	birth := make(map[string]int) // signal -> producer finish step
	death := make(map[string]int) // signal -> latest consumer step
	have := make(map[string]bool) // signals with a committed producer
	for id, p := range s.placed {
		if p.Step == 0 {
			continue
		}
		pn := s.g.Node(dfg.NodeID(id))
		birth[pn.Name] = p.Step + pn.Cycles - 1
		have[pn.Name] = true
	}
	if s.opt.RegisterInputs {
		for _, in := range s.g.Inputs() {
			birth[in] = 0
			have[in] = true
		}
	}
	consume := func(n *dfg.Node, step int) {
		for _, a := range n.Args {
			if !have[a] {
				continue
			}
			if step > death[a] {
				death[a] = step
			}
		}
	}
	for id, p := range s.placed {
		if p.Step == 0 {
			continue
		}
		consume(s.g.Node(dfg.NodeID(id)), p.Step)
	}
	if extra != nil {
		consume(extra, extraStep)
	}
	names := make([]string, 0, len(have))
	for sig := range have {
		names = append(names, sig)
	}
	sort.Strings(names)
	out := make([]rtl.Interval, 0, len(names))
	for _, sig := range names {
		d := death[sig]
		if d == 0 { // no consumer yet: hold the value one boundary
			d = birth[sig] + 1
		}
		out = append(out, rtl.Interval{Name: sig, Birth: birth[sig], Death: d})
	}
	return out
}

// commit places n at the chosen candidate: grid footprint, datapath
// binding, and bookkeeping. evaluated is the full alternative set the
// choice was made from, recorded for the Liapunov audit; grown lists the
// unit types local rescheduling opened while searching, recorded so a
// replay can reproduce the instance-count trajectory.
func (s *state) commit(n *dfg.Node, c candidate, evaluated []sched.TraceCandidate, grown []string) error {
	table := s.tableOf(c.unit)
	table.Grow(c.pos.Index) // replayed positions can outrun the probed width
	if err := table.Place(s.g, n.ID, c.pos, n.Cycles); err != nil {
		return fmt.Errorf("mfsa: %w", err)
	}
	key := cell{c.unit.Name, c.pos.Index}
	a, ok := s.alus[key]
	if !ok {
		a = s.dp.AddALU(c.unit)
		s.alus[key] = a
		bc := s.boundCols[c.unit.Name]
		for len(bc) <= c.pos.Index {
			bc = append(bc, false)
		}
		bc[c.pos.Index] = true
		s.boundCols[c.unit.Name] = bc
	}
	a.Bind(n, n.Args, c.pos.Step)
	s.placed[n.ID] = sched.Placement{Step: c.pos.Step, Type: c.unit.Name, Index: c.pos.Index}
	s.steps[n.ID] = c.pos.Step
	// Fold the placement into the lifetime counts: n consumes its args at
	// its start step and its own output is born at its finish step, held
	// one boundary until a successor commits.
	for _, arg := range n.Args {
		if lt := s.life[arg]; lt != nil {
			s.consume(lt, c.pos.Step)
		}
	}
	born := &lifetime{birth: c.pos.Step + n.Cycles - 1}
	s.life[n.Name] = born
	if lo, hi := born.span(); hi > lo {
		s.addSpan(lo, hi, 1)
	}
	s.regBase = s.maxCnt()
	if s.opt.NoTrace {
		return nil
	}
	var cands []sched.TraceCandidate
	if len(evaluated) > 0 {
		cands = append(cands, evaluated...) // own the scratch buffer's content
	}
	s.trace = append(s.trace, sched.TraceStep{
		Node: n.ID, Type: c.unit.Name,
		CurrentJ: s.current[c.unit.Name], MaxJ: s.maxInst[c.unit.Name],
		Pos: c.pos, Energy: c.value,
		Candidates: cands,
		Grown:      grown,
	})
	return nil
}

func (s *state) finish() (*Result, error) {
	out := sched.NewSchedule(s.g, s.opt.CS)
	out.ClockNs = s.opt.ClockNs
	out.Latency = s.opt.Latency
	for _, name := range s.pipeTypes {
		out.PipelinedTypes[name] = true
	}
	for id, p := range s.placed {
		if p.Step == 0 {
			continue // unplaced; Verify reports it
		}
		out.Place(dfg.NodeID(id), p)
	}
	if !s.opt.NoTrace {
		out.Trace = &sched.Trace{Steps: s.trace}
	}
	out.Frames = s.frames
	if err := out.Verify(s.opt.Limits); err != nil {
		return nil, fmt.Errorf("mfsa: internal: produced illegal schedule: %w", err)
	}
	// §5.6 post-pass: re-derive each ALU's input lists jointly over all
	// its bound operations (the incremental lists are order-dependent).
	s.dp.ReoptimizeMuxes(s.g)
	s.dp.AssignRegisters(s.intervals(nil, 0))
	if err := s.dp.Validate(); err != nil {
		return nil, fmt.Errorf("mfsa: internal: produced invalid datapath: %w", err)
	}
	if s.opt.Style == Style2 {
		if err := VerifyStyle2(s.g, s.dp); err != nil {
			return nil, fmt.Errorf("mfsa: internal: %w", err)
		}
	}
	return &Result{Schedule: out, Datapath: s.dp, Cost: s.dp.Cost()}, nil
}

// VerifyStyle2All checks the style-2 restriction on a finished datapath
// — no ALU executes two operations connected by a data edge — and
// returns every violation as a typed diagnostic. VerifyStyle2 is the
// historical first-error shim on top.
func VerifyStyle2All(g *dfg.Graph, dp *rtl.Datapath) diag.List {
	var out diag.List
	for _, a := range dp.ALUs {
		for _, b := range a.Ops {
			n := g.Node(b.Node)
			for _, pid := range n.Preds() {
				if a.HasNode(pid) {
					out = append(out, diag.Diagnostic{
						Code: diag.CodeStyle2SelfLoop, Severity: diag.Error,
						Artifact: "datapath", Design: g.Name, Loc: a.Name,
						Message: fmt.Sprintf("style 2 violated: %q and its predecessor %q share %s",
							n.Name, g.Node(pid).Name, a.Name),
					})
				}
			}
		}
	}
	return out
}

// VerifyStyle2 returns the first style-2 violation found (same message
// string as the historical single-error verifier), or nil.
func VerifyStyle2(g *dfg.Graph, dp *rtl.Datapath) error {
	if all := VerifyStyle2All(g, dp); len(all) > 0 {
		return all[:1].ErrOrNil()
	}
	return nil
}
