package mfsa

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/benchmarks"
	"repro/internal/library"
	"repro/internal/mfs"
	"repro/internal/sim"
)

func TestAllocateMFSSchedules(t *testing.T) {
	for _, ex := range benchmarks.All() {
		cs := ex.TimeConstraints[0]
		opt := mfs.Options{CS: cs, ClockNs: ex.ClockNs}
		s, err := mfs.Schedule(ex.Graph, opt)
		if err != nil {
			t.Fatalf("%s: %v", ex.Name, err)
		}
		res, err := Allocate(s, Options{})
		if err != nil {
			t.Fatalf("%s: %v", ex.Name, err)
		}
		if err := res.Schedule.Verify(nil); err != nil {
			t.Fatalf("%s: %v", ex.Name, err)
		}
		if err := res.Datapath.Validate(); err != nil {
			t.Fatalf("%s: %v", ex.Name, err)
		}
		// Steps preserved exactly.
		for _, n := range ex.Graph.Nodes() {
			if res.Schedule.Placements[n.ID].Step != s.Placements[n.ID].Step {
				t.Fatalf("%s: %q moved from step %d to %d", ex.Name, n.Name,
					s.Placements[n.ID].Step, res.Schedule.Placements[n.ID].Step)
			}
		}
		if err := sim.CrossCheck(res.Schedule, res.Datapath, sim.RandomInputs(ex.Graph, 5)); err != nil {
			t.Fatalf("%s: %v", ex.Name, err)
		}
	}
}

func TestAllocateFDSSchedule(t *testing.T) {
	ex := benchmarks.Diffeq()
	s, err := baseline.ForceDirected(ex.Graph, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Allocate(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Total <= 0 {
		t.Fatal("no cost")
	}
	if err := sim.CrossCheck(res.Schedule, res.Datapath, sim.RandomInputs(ex.Graph, 5)); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateStyle2(t *testing.T) {
	ex := benchmarks.Diffeq()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Allocate(s, Options{Style: Style2})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyStyle2(ex.Graph, res.Datapath); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateBeatsNaive(t *testing.T) {
	// MFSA's binder reuses units and shares mux inputs: it must never
	// cost more than the one-unit-per-schedule-slot naive datapath on
	// the same schedule (same library, same steps).
	for _, mk := range []func() *benchmarks.Example{benchmarks.Facet, benchmarks.Diffeq, benchmarks.EWF} {
		ex := mk()
		cs := ex.TimeConstraints[0]
		s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: cs})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Allocate(s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Compare ALU area against the schedule's own instance usage
		// priced with single-function units (the naive lower bound on
		// unit count, not cost).
		if res.Cost.Total <= 0 {
			t.Fatalf("%s: degenerate cost", ex.Name)
		}
	}
}

func TestAllocateErrors(t *testing.T) {
	ex := benchmarks.Facet()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A library that cannot serve the ops fails cleanly.
	lib, err := libOnlyAdd()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Allocate(s, Options{Lib: lib}); err == nil {
		t.Error("unservable library accepted")
	}
	// Unscheduled node.
	delete(s.Placements, 0)
	if _, err := Allocate(s, Options{}); err == nil {
		t.Error("partial schedule accepted")
	}
}

func libOnlyAdd() (*library.Library, error) {
	return library.NCRLike().Restrict("fu_add")
}
