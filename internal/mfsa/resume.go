package mfsa

import (
	"context"
	"fmt"

	"repro/internal/dfg"
	"repro/internal/sched"
)

// ResumeCtx re-synthesizes g after a local edit by replaying the recorded
// trajectory of a previous run instead of re-deriving every decision.
// prev is the result of synthesizing the pre-edit graph (its Schedule's
// Graph, Frames and Trace must be the ones MFSA produced); oldFrames is
// prev.Schedule.Frames remapped onto g's node IDs (entries for freshly
// added nodes absent or past the end); seeds are the node IDs whose
// timing inputs the edit changed, as for sched.UpdateFrames.
//
// The result is always bit-identical to SynthesizeCtx(g, opt) — replay is
// an optimization, never a semantic shortcut. The induction mirrors
// mfs.ResumeCtx: if the initial per-unit instance bounds match the old
// run's, then as long as each trace step's node is structurally
// equivalent to the new priority order's node, its frames match, and its
// recorded instance-count trajectory (MaxJ, Grown, CurrentJ) still
// holds, the allocator state after the prefix — grid occupancy, ALU
// bindings, mux lists, value lifetimes — is identical to the old run's,
// so the recorded decision IS what bestCandidate would derive and it is
// committed directly. The first divergence switches permanently to the
// full per-node search, which from the common state continues exactly as
// a fresh run would. Whenever a precondition fails (no trace — e.g. the
// previous run had NoTrace set —, changed initial bounds, or a changed
// input set under RegisterInputs), the function falls back to the full
// synthesis, so callers can treat it as a drop-in Synthesize.
func ResumeCtx(ctx context.Context, g *dfg.Graph, opt Options, prev *Result, oldFrames sched.Frames, seeds []dfg.NodeID) (*Result, error) {
	opt, unitsByOp, err := prepare(g, opt)
	if err != nil {
		return nil, err
	}
	if prev == nil || prev.Schedule == nil || prev.Schedule.Trace == nil ||
		prev.Schedule.Frames == nil || prev.Schedule.Graph == nil {
		return SynthesizeCtx(ctx, g, opt)
	}
	frames, err := sched.UpdateFrames(g, opt.CS, opt.ClockNs, oldFrames, seeds)
	if err != nil {
		return nil, fmt.Errorf("mfsa: %w", err)
	}
	if opt.RegisterInputs && !sameInputs(g, prev.Schedule.Graph) {
		return synthesize(ctx, g, opt, frames, unitsByOp)
	}
	oldMax, oldCur, ok := instanceBounds(prev.Schedule.Graph, opt, unitsByOp)
	if !ok {
		return synthesize(ctx, g, opt, frames, unitsByOp)
	}
	s := newState(g, opt, frames, unitsByOp)
	if !intMapsEqual(s.maxInst, oldMax) || !intMapsEqual(s.current, oldCur) {
		return synthesize(ctx, g, opt, frames, unitsByOp)
	}
	steps := prev.Schedule.Trace.Steps
	replaying := true
	for i, id := range sched.PriorityOrder(g, frames) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if replaying {
			if i < len(steps) && s.replayStep(id, &steps[i], prev) {
				continue
			}
			replaying = false
		}
		if err := s.placeOne(id); err != nil {
			return nil, err
		}
	}
	return s.finish()
}

// Resume is ResumeCtx without cancellation.
func Resume(g *dfg.Graph, opt Options, prev *Result, oldFrames sched.Frames, seeds []dfg.NodeID) (*Result, error) {
	return ResumeCtx(context.Background(), g, opt, prev, oldFrames, seeds)
}

// replayStep commits the recorded decision st for new-graph node id if
// every equivalence precondition holds; it returns false (leaving the
// allocator untouched) on any mismatch. The replayed trace step is
// lightweight — no candidate set — which lint's candidate-minimality
// audit treats as nothing-to-check and which remains sufficient for a
// future resume.
func (s *state) replayStep(id dfg.NodeID, st *sched.TraceStep, prev *Result) bool {
	n := s.g.Node(id)
	pg := prev.Schedule.Graph
	if int(st.Node) >= pg.Len() || !sched.NodesEquivalent(pg.Node(st.Node), n) {
		return false
	}
	if s.frames[id] != prev.Schedule.Frames[st.Node] {
		return false
	}
	u, ok := s.opt.Lib.Lookup(st.Type)
	if !ok || st.MaxJ != s.maxInst[st.Type] {
		return false
	}
	capable := false
	for _, cu := range s.unitsFor(n) {
		if cu.Name == st.Type {
			capable = true
			break
		}
	}
	if !capable {
		return false
	}
	// Reproduce the recorded local-rescheduling growth; on any later
	// mismatch the increments are reverted so the state stays untouched.
	applied := 0
	grownOK := true
	for _, name := range st.Grown {
		if s.current[name] >= s.maxInst[name] {
			grownOK = false
			break
		}
		s.current[name]++
		applied++
	}
	revert := func() {
		for i := applied - 1; i >= 0; i-- {
			s.current[st.Grown[i]]--
		}
	}
	if !grownOK || st.CurrentJ != s.current[st.Type] ||
		st.Pos.Index < 1 || st.Pos.Index > s.current[st.Type] {
		revert()
		return false
	}
	var grown []string
	if len(st.Grown) > 0 {
		grown = append(grown, st.Grown...) // own the old trace's slice
	}
	// commit performs the grid placement itself (atomic on failure) plus
	// the binding and lifetime bookkeeping a fresh run would do.
	if err := s.commit(n, candidate{unit: u, pos: st.Pos, value: st.Energy}, nil, grown); err != nil {
		revert()
		return false
	}
	return true
}

// sameInputs reports whether two graphs declare the same primary inputs
// in the same order (the order seeds RegisterInputs' initial lifetimes).
func sameInputs(a, b *dfg.Graph) bool {
	ia, ib := a.Inputs(), b.Inputs()
	if len(ia) != len(ib) {
		return false
	}
	for i := range ia {
		if ia[i] != ib[i] {
			return false
		}
	}
	return true
}

func intMapsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	//hls:orderok set-equality test; the verdict is the same whatever order the keys arrive in
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
