package guard

import (
	"errors"
	"strings"
	"testing"
)

func TestRecoverConvertsPanic(t *testing.T) {
	f := func() (err error) {
		defer Recover("guard.test", &err)
		panic("boom")
	}
	err := f()
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("got %T (%v), want *InternalError", err, err)
	}
	if ie.Op != "guard.test" || ie.Value != "boom" {
		t.Errorf("InternalError = %+v", ie)
	}
	if len(ie.Stack) == 0 || !strings.Contains(string(ie.Stack), "goroutine") {
		t.Errorf("stack not captured: %q", ie.Stack)
	}
	if !strings.Contains(err.Error(), "guard.test") || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Error() = %q", err.Error())
	}
}

func TestRecoverKeepsExistingInternalError(t *testing.T) {
	orig := NewInternalError("inner.op", "first")
	f := func() (err error) {
		defer Recover("outer.op", &err)
		panic(orig)
	}
	err := f()
	var ie *InternalError
	if !errors.As(err, &ie) || ie != orig {
		t.Fatalf("re-panicked InternalError not preserved: %v", err)
	}
}

func TestRecoverNoPanicLeavesErrAlone(t *testing.T) {
	f := func() (err error) {
		defer Recover("guard.test", &err)
		return nil
	}
	if err := f(); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	g := func() (err error) {
		defer Recover("guard.test", &err)
		return errors.New("ordinary")
	}
	if err := g(); err == nil || err.Error() != "ordinary" {
		t.Fatalf("ordinary error clobbered: %v", err)
	}
}

func TestErrorStrings(t *testing.T) {
	le := &LimitError{What: "graph nodes", Got: 7, Max: 3}
	if got := le.Error(); !strings.Contains(got, "graph nodes") || !strings.Contains(got, "7") {
		t.Errorf("LimitError.Error() = %q", got)
	}
	re := &RangeError{Lo: 5, Hi: 2}
	if got := re.Error(); !strings.Contains(got, "[5, 2]") {
		t.Errorf("RangeError.Error() = %q", got)
	}
}
