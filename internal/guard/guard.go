// Package guard centralizes the hardening primitives the synthesis
// engine needs to run as a long-lived service: the panic-to-error
// recovery boundary (Recover, used by the core entry points and the
// worker pool so no internal bug can crash a host process), typed
// resource-limit and range errors, and the default resource budgets
// shared by the behavioral frontend, the schedulers and the simulator.
//
// The budgets exist to reject degenerate inputs — a parser-accepted
// `@ 1000000000` multicycle annotation, a graph with millions of nodes —
// with a typed error before they exhaust memory, not to constrain
// legitimate designs: every paper benchmark sits orders of magnitude
// below them.
package guard

import (
	"fmt"
	"runtime/debug"
)

// Default resource budgets. Callers treat a zero-valued knob
// (core.Config.MaxNodes, core.Config.MaxCSteps) as selecting these.
const (
	// DefaultMaxNodes caps the number of operations in a graph accepted
	// by the synthesis entry points.
	DefaultMaxNodes = 100_000

	// DefaultMaxCSteps caps control-step counts wherever one is accepted:
	// time constraints, multicycle annotations, loop time constraints,
	// and the resource-constrained search bound. Placement grids and
	// frame tables are O(cs) per FU column, so this bounds scheduler
	// memory.
	DefaultMaxCSteps = 1 << 16

	// DefaultSimBudget caps the node-cycles one simulation run may
	// execute before it is aborted with a LimitError.
	DefaultSimBudget = 50_000_000
)

// InternalError is a recovered internal panic, carrying the panic value
// and the stack captured at the recovery point. Seeing one means a bug
// inside the engine (or data violating a documented API invariant)
// crossed the recovery boundary instead of crashing the host process.
type InternalError struct {
	// Op is the entry point that recovered, e.g. "core.Synthesize".
	Op string

	// Value is the recovered panic value.
	Value any

	// Stack is the goroutine stack at recovery time (runtime/debug.Stack).
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("%s: internal error (recovered panic): %v", e.Op, e.Value)
}

// NewInternalError captures the current stack around a recovered panic
// value.
func NewInternalError(op string, value any) *InternalError {
	return &InternalError{Op: op, Value: value, Stack: debug.Stack()}
}

// Recover converts an in-flight panic into an *InternalError stored in
// *err. Use it as the single deferred recovery boundary of an entry
// point:
//
//	func Synthesize(...) (d *Design, err error) {
//		defer guard.Recover("core.Synthesize", &err)
//		...
//	}
//
// A panic value that already is an *InternalError (re-panicked across a
// layer) is kept as-is so the original stack survives. When no panic is
// in flight, Recover does nothing.
func Recover(op string, err *error) {
	r := recover()
	if r == nil {
		return
	}
	if ie, ok := r.(*InternalError); ok {
		*err = ie
		return
	}
	*err = NewInternalError(op, r)
}

// LimitError reports an input exceeding a resource budget. It is
// returned before the offending input is allowed to allocate memory or
// compute proportional to the out-of-range value.
type LimitError struct {
	// What names the bounded quantity, e.g. "graph nodes",
	// "multicycle count", "time constraint".
	What string

	// Got is the offending value; Max the budget it exceeded.
	Got, Max int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("%s %d exceeds the limit of %d", e.What, e.Got, e.Max)
}

// RangeError reports a control-step constraint range a design-space
// sweep cannot satisfy: either the range itself is malformed (Lo < 1 or
// Lo > Hi), or it is well-formed but lies entirely below the graph's
// critical path, so no constraint in it admits a schedule. The second
// form carries the critical path (and, in multi-graph sweeps, the
// offending graph's name) so a caller can retry with a feasible range.
type RangeError struct {
	Lo, Hi int

	// CriticalPath, when positive, is the critical-path cycle count that
	// exceeds Hi: every cs in [Lo, Hi] is infeasible for the graph.
	CriticalPath int

	// Graph names the offending graph in multi-graph sweeps; empty for
	// single-graph sweeps and malformed ranges.
	Graph string
}

func (e *RangeError) Error() string {
	if e.CriticalPath > 0 {
		of := ""
		if e.Graph != "" {
			of = fmt.Sprintf(" of graph %q", e.Graph)
		}
		return fmt.Sprintf("control-step range [%d, %d] lies below the critical path%s (%d cycles): no feasible constraint",
			e.Lo, e.Hi, of, e.CriticalPath)
	}
	return fmt.Sprintf("invalid control-step range [%d, %d]: need 1 <= lo <= hi", e.Lo, e.Hi)
}
