// Package opt implements frontend optimization passes over data-flow
// graphs, run between the behavioral frontend and the schedulers:
// constant folding, common-subexpression elimination (the unconditional
// complement of §5.1's cross-branch merge), and dead-code elimination
// against a set of live outputs. Passes preserve semantics — the tests
// cross-check evaluation before and after — and only ever shrink the
// graph, which shrinks the scheduling problem.
package opt

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
	"repro/internal/op"
)

// Result reports what a pipeline run changed.
type Result struct {
	Graph  *dfg.Graph
	Consts map[string]int64 // updated constant-input values
	Folded int              // ops replaced by constants
	CSE    int              // duplicate ops merged
	Branch int              // cross-branch duplicates merged (§5.1)
	Dead   int              // unreachable ops removed
}

// Pipeline runs fold → CSE → cross-branch merge (§5.1) → DCE. consts
// gives the values of constant inputs (as produced by the behav
// frontend); outputs lists the live signals (empty = every sink node is
// live, so DCE is a no-op on well-formed graphs but still strips newly
// orphaned subtrees).
func Pipeline(g *dfg.Graph, consts map[string]int64, outputs []string) (*Result, error) {
	res := &Result{Graph: g, Consts: cloneConsts(consts)}
	var err error
	res.Graph, res.Folded, err = FoldConstants(res.Graph, res.Consts)
	if err != nil {
		return nil, err
	}
	res.Graph, res.CSE, err = EliminateCommonSubexpressions(res.Graph)
	if err != nil {
		return nil, err
	}
	res.Graph, res.Branch, err = res.Graph.MergeExclusiveDuplicates()
	if err != nil {
		return nil, err
	}
	res.Graph, res.Dead, err = EliminateDead(res.Graph, outputs)
	if err != nil {
		return nil, err
	}
	if err := res.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}
	return res, nil
}

func cloneConsts(consts map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(consts))
	for k, v := range consts {
		out[k] = v
	}
	return out
}

// FoldConstants replaces operations whose inputs are all constants with
// new constant inputs, updating consts in place. Operations inside
// conditional branches fold too (their values are branch-independent).
// Loop nodes never fold.
func FoldConstants(g *dfg.Graph, consts map[string]int64) (*dfg.Graph, int, error) {
	value := make(map[string]int64, len(consts))
	for k, v := range consts {
		value[k] = v
	}
	folded := make(map[string]int64) // node name -> folded value
	for _, n := range g.Nodes() {
		if n.IsLoop() || n.Cycles != 1 {
			continue // keep explicit multicycle ops (user-annotated timing)
		}
		vals := make([]int64, len(n.Args))
		ok := true
		for i, a := range n.Args {
			v, isConst := value[a]
			if !isConst {
				ok = false
				break
			}
			vals[i] = v
		}
		if !ok {
			continue
		}
		var v int64
		if len(vals) == 1 {
			v = n.Op.Eval(vals[0], 0)
		} else {
			v = n.Op.Eval(vals[0], vals[1])
		}
		folded[n.Name] = v
		value[n.Name] = v
	}
	if len(folded) == 0 {
		return g, 0, nil
	}
	// Rebuild: folded nodes become constant inputs named like behav's
	// literals so downstream tooling treats them uniformly.
	out := dfg.New(g.Name)
	for _, in := range g.Inputs() {
		if err := out.AddInput(in); err != nil {
			return nil, 0, err
		}
	}
	rename := make(map[string]string)
	for name, v := range folded {
		lit := litName(v)
		if _, exists := consts[lit]; !exists {
			if err := out.AddInput(lit); err != nil {
				// The literal input may collide with an original input
				// name; fall back to a node-specific name.
				lit = name + "_const"
				if err := out.AddInput(lit); err != nil {
					return nil, 0, err
				}
			}
			consts[lit] = v
		}
		rename[name] = lit
	}
	for _, n := range g.Nodes() {
		if _, dead := folded[n.Name]; dead {
			continue
		}
		if err := copyNode(out, g, n, rename); err != nil {
			return nil, 0, err
		}
	}
	return out, len(folded), nil
}

func litName(v int64) string {
	if v < 0 {
		return fmt.Sprintf("lit_m%d", -v)
	}
	return fmt.Sprintf("lit_%d", v)
}

// EliminateCommonSubexpressions merges unconditional operations with
// identical (op, args, cycles) — order-insensitively for commutative
// ops. Conditional operations are left to §5.1's cross-branch merge
// (dfg.MergeExclusiveDuplicates), since merging a guarded op with an
// unguarded one would change which hardware may be shared. A rebuild
// failure — possible only on a malformed input graph — is returned as an
// error instead of panicking.
func EliminateCommonSubexpressions(g *dfg.Graph) (*dfg.Graph, int, error) {
	type key struct {
		op     op.Kind
		a, b   string
		cycles int
	}
	canon := make(map[key]string)
	rename := make(map[string]string)
	drop := make(map[string]bool)
	for _, n := range g.Nodes() {
		if n.IsLoop() || len(n.Excl) > 0 {
			continue
		}
		a := resolve(n.Args[0], rename)
		b := ""
		if len(n.Args) > 1 {
			b = resolve(n.Args[1], rename)
		}
		if n.Op.Commutative() && b != "" && b < a {
			a, b = b, a
		}
		k := key{n.Op, a, b, n.Cycles}
		if prev, ok := canon[k]; ok {
			rename[n.Name] = prev
			drop[n.Name] = true
			continue
		}
		canon[k] = n.Name
	}
	if len(drop) == 0 {
		return g, 0, nil
	}
	out := dfg.New(g.Name)
	for _, in := range g.Inputs() {
		if err := out.AddInput(in); err != nil {
			return nil, 0, fmt.Errorf("opt: CSE rebuild of %s: %w", g.Name, err)
		}
	}
	for _, n := range g.Nodes() {
		if drop[n.Name] {
			continue
		}
		if err := copyNode(out, g, n, rename); err != nil {
			return nil, 0, fmt.Errorf("opt: CSE rebuild of %s: node %q: %w", g.Name, n.Name, err)
		}
	}
	return out, len(drop), nil
}

// EliminateDead removes operations from which no live output is
// reachable. outputs names the live signals; empty means every sink.
func EliminateDead(g *dfg.Graph, outputs []string) (*dfg.Graph, int, error) {
	live := make(map[dfg.NodeID]bool)
	var roots []dfg.NodeID
	if len(outputs) == 0 {
		for _, n := range g.Nodes() {
			if len(n.Succs()) == 0 {
				roots = append(roots, n.ID)
			}
		}
	} else {
		for _, name := range outputs {
			n, ok := g.Lookup(name)
			if !ok {
				return nil, 0, fmt.Errorf("opt: unknown output %q", name)
			}
			roots = append(roots, n.ID)
		}
	}
	var mark func(id dfg.NodeID)
	mark = func(id dfg.NodeID) {
		if live[id] {
			return
		}
		live[id] = true
		for _, p := range g.Node(id).Preds() {
			mark(p)
		}
	}
	for _, r := range roots {
		mark(r)
	}
	dead := g.Len() - len(live)
	if dead == 0 {
		return g, 0, nil
	}
	out := dfg.New(g.Name)
	for _, in := range g.Inputs() {
		if err := out.AddInput(in); err != nil {
			return nil, 0, err
		}
	}
	for _, n := range g.Nodes() {
		if !live[n.ID] {
			continue
		}
		if err := copyNode(out, g, n, nil); err != nil {
			return nil, 0, err
		}
	}
	return out, dead, nil
}

func resolve(name string, rename map[string]string) string {
	for {
		r, ok := rename[name]
		if !ok {
			return name
		}
		name = r
	}
}

// copyNode re-adds node n into out with args resolved through rename.
func copyNode(out, g *dfg.Graph, n *dfg.Node, rename map[string]string) error {
	args := make([]string, len(n.Args))
	for i, a := range n.Args {
		args[i] = resolve(a, rename)
	}
	var id dfg.NodeID
	var err error
	if n.IsLoop() {
		binds := make(map[string]string, len(n.SubIns))
		for i, in := range n.SubIns {
			binds[in] = args[i]
		}
		id, err = out.AddLoop(n.Name, n.Sub, n.SubOut, binds)
	} else {
		id, err = out.AddOp(n.Name, n.Op, args...)
	}
	if err != nil {
		return err
	}
	if err := out.SetCycles(id, n.Cycles); err != nil {
		return err
	}
	if !n.IsLoop() {
		if err := out.SetDelayNs(id, n.DelayNs); err != nil {
			return err
		}
	}
	if len(n.Excl) > 0 {
		if err := out.Tag(id, n.Excl...); err != nil {
			return err
		}
	}
	return nil
}

// Stats renders a one-line summary of a pipeline result.
func (r *Result) Stats() string {
	parts := []string{}
	if r.Folded > 0 {
		parts = append(parts, fmt.Sprintf("folded %d", r.Folded))
	}
	if r.CSE > 0 {
		parts = append(parts, fmt.Sprintf("merged %d", r.CSE))
	}
	if r.Branch > 0 {
		parts = append(parts, fmt.Sprintf("cross-branch merged %d", r.Branch))
	}
	if r.Dead > 0 {
		parts = append(parts, fmt.Sprintf("removed %d dead", r.Dead))
	}
	if len(parts) == 0 {
		return "no changes"
	}
	sort.Strings(parts)
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
