package opt

import (
	"testing"

	"repro/internal/behav"
	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/op"
	"repro/internal/sim"
)

func build(t *testing.T, src string) (*dfg.Graph, map[string]int64) {
	t.Helper()
	g, consts, err := behav.BuildSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return g, consts
}

// checkEquivalent verifies that live signals evaluate identically before
// and after optimization on random inputs.
func checkEquivalent(t *testing.T, before *dfg.Graph, beforeConsts map[string]int64,
	res *Result, signals []string) {
	t.Helper()
	for seed := int64(1); seed <= 4; seed++ {
		in := sim.RandomInputs(before, seed)
		for k, v := range beforeConsts {
			in[k] = v
		}
		want, err := before.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		in2 := sim.RandomInputs(res.Graph, seed)
		// Align shared inputs and constants.
		for _, name := range res.Graph.Inputs() {
			if v, ok := in[name]; ok {
				in2[name] = v
			}
			if v, ok := res.Consts[name]; ok {
				in2[name] = v
			}
		}
		got, err := res.Graph.Eval(in2)
		if err != nil {
			t.Fatal(err)
		}
		for _, sig := range signals {
			if got[sig] != want[sig] {
				t.Fatalf("seed %d: %q = %d, want %d", seed, sig, got[sig], want[sig])
			}
		}
	}
}

func TestFoldConstants(t *testing.T) {
	g, consts := build(t, `
design fold
input a
c = 3 + 4
d = c * 2
y = a + d
`)
	res, err := Pipeline(g, consts, []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded < 2 {
		t.Errorf("folded = %d, want >= 2 (c and d)", res.Folded)
	}
	if res.Graph.Len() != 1 {
		t.Errorf("remaining ops = %d, want 1 (just y)", res.Graph.Len())
	}
	if res.Consts["lit_14"] != 14 {
		t.Errorf("folded constant missing: %v", res.Consts)
	}
	checkEquivalent(t, g, consts, res, []string{"y"})
}

func TestFoldKeepsMulticycle(t *testing.T) {
	g, consts := build(t, `
design mc
input a
m = 3 * 4 @2
y = a + m
`)
	res, err := Pipeline(g, consts, []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded != 0 {
		t.Errorf("multicycle op folded away (user timing annotation lost)")
	}
}

func TestCSE(t *testing.T) {
	g, consts := build(t, `
design cse
input a, b
x = a + b
y = b + a
u = x * 2
v = y * 2
w = u - v
`)
	res, err := Pipeline(g, consts, []string{"w"})
	if err != nil {
		t.Fatal(err)
	}
	// y merges into x (commutative), then v into u, then w = u - u stays.
	if res.CSE != 2 {
		t.Errorf("CSE = %d, want 2", res.CSE)
	}
	checkEquivalent(t, g, consts, res, []string{"w"})
}

func TestCSESkipsConditionals(t *testing.T) {
	g, consts := build(t, `
design condcse
input a, b
if a < b {
    x = a + b
} else {
    y = a + b
}
`)
	res, err := Pipeline(g, consts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CSE != 0 {
		t.Errorf("CSE merged guarded ops (that is §5.1's job): %d", res.CSE)
	}
}

func TestCSERespectsNonCommutative(t *testing.T) {
	g, consts := build(t, `
design nc
input a, b
x = a - b
y = b - a
`)
	res, err := Pipeline(g, consts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CSE != 0 {
		t.Error("a-b merged with b-a")
	}
}

func TestDCE(t *testing.T) {
	g, consts := build(t, `
design dead
input a
live = a + 1
waste1 = a * 3
waste2 = waste1 - 1
`)
	res, err := Pipeline(g, consts, []string{"live"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dead != 2 {
		t.Errorf("dead = %d, want 2", res.Dead)
	}
	if _, ok := res.Graph.Lookup("waste1"); ok {
		t.Error("dead op survived")
	}
	checkEquivalent(t, g, consts, res, []string{"live"})
}

func TestDCEUnknownOutput(t *testing.T) {
	g, consts := build(t, "design d\ninput a\nx = a + 1\n")
	if _, err := Pipeline(g, consts, []string{"nosuch"}); err == nil {
		t.Error("unknown output accepted")
	}
}

func TestPipelineNoChanges(t *testing.T) {
	ex := benchmarks.Facet()
	res, err := Pipeline(ex.Graph, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded != 0 || res.CSE != 0 || res.Dead != 0 {
		t.Errorf("facet changed: %s", res.Stats())
	}
	if res.Stats() != "no changes" {
		t.Errorf("Stats = %q", res.Stats())
	}
}

func TestPipelineOnDiffeq(t *testing.T) {
	// The classic diffeq has a genuine common subexpression (u·dx twice).
	ex := benchmarks.Diffeq()
	res, err := Pipeline(ex.Graph, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CSE != 1 {
		t.Errorf("CSE = %d, want 1 (m1 and m6 are both u*dx)", res.CSE)
	}
	if res.Graph.Len() != ex.Graph.Len()-1 {
		t.Errorf("len = %d, want %d", res.Graph.Len(), ex.Graph.Len()-1)
	}
}

func TestStatsRendering(t *testing.T) {
	r := &Result{Folded: 2, CSE: 1, Dead: 3}
	s := r.Stats()
	for _, want := range []string{"folded 2", "merged 1", "removed 3 dead"} {
		if !contains(s, want) {
			t.Errorf("Stats %q missing %q", s, want)
		}
	}
	_ = op.Add
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestPipelineMergesCrossBranchDuplicates(t *testing.T) {
	// §5.1: both branches compute the same value; the pipeline keeps one
	// copy (distinct names, so plain CSE cannot touch them).
	g, consts := build(t, `
design branchdup
input a, b
if a < b {
    lo = a + b
    lo_use = lo * 2
} else {
    hi = b + a
    hi_use = hi * 3
}
`)
	res, err := Pipeline(g, consts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Branch != 1 {
		t.Errorf("Branch = %d, want 1 (lo/hi merge)", res.Branch)
	}
	checkEquivalent(t, g, consts, res, []string{"lo_use", "hi_use"})
	if !contains(res.Stats(), "cross-branch merged 1") {
		t.Errorf("Stats = %q", res.Stats())
	}
}
