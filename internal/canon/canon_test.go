package canon

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/guard"
	"repro/internal/library"
	"repro/internal/op"
)

// rebuild reconstructs g with every signal renamed through ren and the
// nodes inserted in the given (topologically valid) order — the two
// transformations Canonical must be blind to.
func rebuild(t *testing.T, g *dfg.Graph, ren func(string) string, order []dfg.NodeID) *dfg.Graph {
	t.Helper()
	out := dfg.New(g.Name + "~rebuilt")
	for _, in := range g.Inputs() {
		if err := out.AddInput(ren(in)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range order {
		n := g.Node(id)
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = ren(a)
		}
		var nid dfg.NodeID
		var err error
		if n.IsLoop() {
			innerRen := func(s string) string { return "q" + s }
			sub := rebuild(t, n.Sub, innerRen, n.Sub.TopoOrder())
			binds := make(map[string]string, len(n.SubIns))
			for i, si := range n.SubIns {
				binds[innerRen(si)] = args[i]
			}
			nid, err = out.AddLoop(ren(n.Name), sub, innerRen(n.SubOut), binds)
		} else {
			nid, err = out.AddOp(ren(n.Name), n.Op, args...)
		}
		if err != nil {
			t.Fatal(err)
		}
		if n.Cycles > 1 {
			if err := out.SetCycles(nid, n.Cycles); err != nil {
				t.Fatal(err)
			}
		}
		if n.DelayNs > 0 && !n.IsLoop() {
			if err := out.SetDelayNs(nid, n.DelayNs); err != nil {
				t.Fatal(err)
			}
		}
		if len(n.Excl) > 0 {
			if err := out.Tag(nid, n.Excl...); err != nil {
				t.Fatal(err)
			}
		}
	}
	return out
}

// reversingRename maps the graph's signal names onto fresh names whose
// lexicographic order is the reverse of the originals', so the
// canonicalizer's name-sorted seed order is maximally perturbed.
func reversingRename(g *dfg.Graph) func(string) string {
	var names []string
	names = append(names, g.Inputs()...)
	for _, n := range g.Nodes() {
		names = append(names, n.Name)
	}
	sort.Strings(names)
	m := make(map[string]string, len(names))
	for i, name := range names {
		m[name] = fmt.Sprintf("r%04d", len(names)-1-i)
	}
	return func(s string) string { return m[s] }
}

// altOrder returns a topologically valid insertion order that differs
// from ID order whenever the graph admits one (descending-ID greedy).
func altOrder(g *dfg.Graph) []dfg.NodeID {
	placed := make([]bool, g.Len())
	var order []dfg.NodeID
	for len(order) < g.Len() {
		for id := g.Len() - 1; id >= 0; id-- {
			if placed[id] {
				continue
			}
			n := g.Node(dfg.NodeID(id))
			ready := true
			for _, p := range n.Preds() {
				if !placed[p] {
					ready = false
					break
				}
			}
			if ready {
				placed[id] = true
				order = append(order, n.ID)
			}
		}
	}
	return order
}

// TestCanonicalIsomorphismInvariant: renaming every signal (reversing
// the name order) and re-inserting the nodes in a different valid order
// must not change the canonical hash on any paper benchmark, while the
// strict fingerprint must notice both transformations.
func TestCanonicalIsomorphismInvariant(t *testing.T) {
	for _, ex := range benchmarks.All() {
		cfg := core.Config{CS: ex.TimeConstraints[0]}
		base, err := Canonical(ex.Graph, nil, cfg)
		if err != nil {
			t.Fatalf("%s: %v", ex.Name, err)
		}
		renamed := rebuild(t, ex.Graph, reversingRename(ex.Graph), ex.Graph.TopoOrder())
		reordered := rebuild(t, ex.Graph, func(s string) string { return s }, altOrder(ex.Graph))
		both := rebuild(t, ex.Graph, reversingRename(ex.Graph), altOrder(ex.Graph))
		for what, g := range map[string]*dfg.Graph{
			"renamed": renamed, "reordered": reordered, "renamed+reordered": both,
		} {
			h, err := Canonical(g, nil, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", ex.Name, what, err)
			}
			if h != base {
				t.Errorf("%s: canonical hash changed under %s variant: %s != %s",
					ex.Name, what, h, base)
			}
		}

		fp, err := Fingerprint(ex.Graph, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for what, g := range map[string]*dfg.Graph{"renamed": renamed, "reordered": reordered} {
			got, err := Fingerprint(g, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got == fp {
				t.Errorf("%s: fingerprint blind to %s variant", ex.Name, what)
			}
		}
	}
}

// TestCanonicalLoopGraph extends the invariance property to folded
// loops: the sub-graph canonicalizes recursively and the positional
// binding of outer operands onto sub inputs is tracked canonically.
func TestCanonicalLoopGraph(t *testing.T) {
	build := func() *dfg.Graph {
		sub := dfg.New("body")
		for _, in := range []string{"u", "v"} {
			if err := sub.AddInput(in); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sub.AddOp("w", op.Mul, "u", "v"); err != nil {
			t.Fatal(err)
		}
		if _, err := sub.AddOp("x", op.Add, "w", "u"); err != nil {
			t.Fatal(err)
		}
		g := dfg.New("outer")
		for _, in := range []string{"a", "b", "c"} {
			if err := g.AddInput(in); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := g.AddOp("s", op.Add, "a", "b"); err != nil {
			t.Fatal(err)
		}
		id, err := g.AddLoop("lp", sub, "x", map[string]string{"u": "s", "v": "c"})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetCycles(id, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddOp("y", op.Sub, "lp", "a"); err != nil {
			t.Fatal(err)
		}
		return g
	}
	g := build()
	base, err := Canonical(g, nil, core.Config{CS: 6})
	if err != nil {
		t.Fatal(err)
	}
	variant := rebuild(t, g, reversingRename(g), altOrder(g))
	h, err := Canonical(variant, nil, core.Config{CS: 6})
	if err != nil {
		t.Fatal(err)
	}
	if h != base {
		t.Errorf("loop graph: canonical hash changed under rename+reorder")
	}
}

// TestCanonicalDistinguishesSharing: a+a (one input read twice) and a+b
// (two symmetric inputs) are not isomorphic and must hash apart — the
// classic trap for name-insensitive leaf hashing.
func TestCanonicalDistinguishesSharing(t *testing.T) {
	shared := dfg.New("shared")
	if err := shared.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := shared.AddOp("s", op.Add, "a", "a"); err != nil {
		t.Fatal(err)
	}
	distinct := dfg.New("distinct")
	for _, in := range []string{"a", "b"} {
		if err := distinct.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := distinct.AddOp("s", op.Add, "a", "b"); err != nil {
		t.Fatal(err)
	}
	h1, err := Canonical(shared, nil, core.Config{CS: 2})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Canonical(distinct, nil, core.Config{CS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Error("a+a and a+b hash equal")
	}
}

// TestCanonicalSymmetricInputs: when two inputs are genuinely
// interchangeable (s=a+b, t=b+a), swapping their roles is an
// automorphism and the hash must not depend on which one the tie-break
// seats first.
func TestCanonicalSymmetricInputs(t *testing.T) {
	build := func(first, second string) *dfg.Graph {
		g := dfg.New("sym")
		for _, in := range []string{first, second} {
			if err := g.AddInput(in); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := g.AddOp("s", op.Add, first, second); err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddOp("t", op.Add, second, first); err != nil {
			t.Fatal(err)
		}
		return g
	}
	h1, err := Canonical(build("a", "b"), nil, core.Config{CS: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The renamed copy maps a's role onto "z" so the name-sorted seed
	// order seats the roles in the opposite order.
	h2, err := Canonical(build("z", "b"), nil, core.Config{CS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("automorphic input swap changed the canonical hash")
	}
}

// graph mutations that must change the canonical hash: every semantic
// node field.
func TestCanonicalGraphSensitivity(t *testing.T) {
	base := func(t *testing.T, mutate func(g *dfg.Graph, mul, add dfg.NodeID)) Hash {
		t.Helper()
		g := dfg.New("m")
		for _, in := range []string{"a", "b", "c"} {
			if err := g.AddInput(in); err != nil {
				t.Fatal(err)
			}
		}
		mul, err := g.AddOp("p", op.Mul, "a", "b")
		if err != nil {
			t.Fatal(err)
		}
		add, err := g.AddOp("s", op.Sub, "p", "c")
		if err != nil {
			t.Fatal(err)
		}
		if mutate != nil {
			mutate(g, mul, add)
		}
		h, err := Canonical(g, nil, core.Config{CS: 4})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	ref := base(t, nil)
	muts := map[string]func(g *dfg.Graph, mul, add dfg.NodeID){
		"multicycle": func(g *dfg.Graph, mul, _ dfg.NodeID) {
			if err := g.SetCycles(mul, 2); err != nil {
				t.Fatal(err)
			}
		},
		"delay": func(g *dfg.Graph, mul, _ dfg.NodeID) {
			if err := g.SetDelayNs(mul, 18.5); err != nil {
				t.Fatal(err)
			}
		},
		"excl-tag": func(g *dfg.Graph, _, add dfg.NodeID) {
			if err := g.Tag(add, dfg.CondTag{Cond: 1, Branch: 0}); err != nil {
				t.Fatal(err)
			}
		},
		"extra-node": func(g *dfg.Graph, _, _ dfg.NodeID) {
			if _, err := g.AddOp("extra", op.Add, "s", "a"); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, mutate := range muts {
		if h := base(t, mutate); h == ref {
			t.Errorf("mutation %s did not change the canonical hash", name)
		}
	}

	// Operand order of a non-commutative node is semantic.
	g := dfg.New("m")
	for _, in := range []string{"a", "b", "c"} {
		if err := g.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddOp("p", op.Mul, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddOp("s", op.Sub, "c", "p"); err != nil { // swapped args
		t.Fatal(err)
	}
	h, err := Canonical(g, nil, core.Config{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h == ref {
		t.Error("swapping Sub operands did not change the canonical hash")
	}

	// A different operator kind is semantic.
	g2 := dfg.New("m")
	for _, in := range []string{"a", "b", "c"} {
		if err := g2.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g2.AddOp("p", op.Add, "a", "b"); err != nil { // Mul -> Add
		t.Fatal(err)
	}
	if _, err := g2.AddOp("s", op.Sub, "p", "c"); err != nil {
		t.Fatal(err)
	}
	h2, err := Canonical(g2, nil, core.Config{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h2 == ref {
		t.Error("changing an op kind did not change the canonical hash")
	}
}

// TestConfigSensitivity: every semantic Config field change rehashes;
// the excluded execution knobs (Parallelism, Timeout) and equivalent
// guard spellings do not.
func TestConfigSensitivity(t *testing.T) {
	g := benchmarks.Diffeq().Graph
	hash := func(cfg core.Config) Hash {
		h, err := Canonical(g, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	base := core.Config{CS: 4}
	ref := hash(base)

	sensitive := map[string]core.Config{
		"cs":              {CS: 5},
		"limits":          {CS: 4, Limits: map[string]int{"alu2": 1}},
		"limits-value":    {CS: 4, Limits: map[string]int{"alu2": 2}},
		"clock":           {CS: 4, ClockNs: 40},
		"latency":         {CS: 4, Latency: 2},
		"pipelined-ops":   {CS: 4, PipelinedOps: []string{"*"}},
		"style":           {CS: 4, Style: 2},
		"weights":         {CS: 4, Weights: [4]float64{1, 2, 3, 4}},
		"register-inputs": {CS: 4, RegisterInputs: true},
		"optimize":        {CS: 4, Optimize: true},
		"lint":            {CS: 4, Lint: true},
		"notrace":         {CS: 4, NoTrace: true},
		"maxnodes":        {CS: 4, MaxNodes: 10},
		"maxcsteps":       {CS: 4, MaxCSteps: 100},
	}
	for name, cfg := range sensitive {
		if hash(cfg) == ref {
			t.Errorf("config field %s did not change the hash", name)
		}
	}

	insensitive := map[string]core.Config{
		"parallelism":        {CS: 4, Parallelism: 7},
		"timeout":            {CS: 4, Timeout: 3 * time.Second},
		"style-zero-is-one":  {CS: 4, Style: 1},
		"maxnodes-default":   {CS: 4, MaxNodes: guard.DefaultMaxNodes},
		"maxcsteps-default":  {CS: 4, MaxCSteps: guard.DefaultMaxCSteps},
		"negative-unlimited": {CS: 4, MaxNodes: -1, MaxCSteps: -1},
	}
	want := map[string]Hash{
		"negative-unlimited": hash(core.Config{CS: 4, MaxNodes: -2, MaxCSteps: -9}),
	}
	for name, cfg := range insensitive {
		expect := ref
		if w, ok := want[name]; ok {
			expect = w
		}
		if hash(cfg) != expect {
			t.Errorf("non-semantic config spelling %s changed the hash", name)
		}
	}
}

// TestLibrarySensitivity: every library cost parameter and unit field
// is semantic; a nil library hashes as the NCR default it resolves to.
func TestLibrarySensitivity(t *testing.T) {
	g := benchmarks.Facet().Graph
	cfg := core.Config{CS: 4}
	hash := func(lib *library.Library) Hash {
		h, err := Canonical(g, lib, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	mk := func(reg, muxBase, muxStep, muxCurve float64, units ...*library.Unit) *library.Library {
		l := library.New("custom", reg, muxBase, muxStep, muxCurve)
		for _, u := range units {
			if err := l.Add(u); err != nil {
				t.Fatal(err)
			}
		}
		return l
	}
	unit := func(name string, area float64, stages int, kinds ...op.Kind) *library.Unit {
		return &library.Unit{Name: name, Ops: kinds, Area: area, Stages: stages}
	}

	ref := hash(mk(100, 50, 30, 0.8, unit("add", 500, 1, op.Add), unit("mul", 2000, 1, op.Mul)))
	variants := map[string]*library.Library{
		"reg-area":   mk(101, 50, 30, 0.8, unit("add", 500, 1, op.Add), unit("mul", 2000, 1, op.Mul)),
		"mux-base":   mk(100, 51, 30, 0.8, unit("add", 500, 1, op.Add), unit("mul", 2000, 1, op.Mul)),
		"mux-step":   mk(100, 50, 31, 0.8, unit("add", 500, 1, op.Add), unit("mul", 2000, 1, op.Mul)),
		"mux-curve":  mk(100, 50, 30, 0.9, unit("add", 500, 1, op.Add), unit("mul", 2000, 1, op.Mul)),
		"unit-area":  mk(100, 50, 30, 0.8, unit("add", 501, 1, op.Add), unit("mul", 2000, 1, op.Mul)),
		"unit-name":  mk(100, 50, 30, 0.8, unit("adder", 500, 1, op.Add), unit("mul", 2000, 1, op.Mul)),
		"unit-ops":   mk(100, 50, 30, 0.8, unit("add", 500, 1, op.Add, op.Sub), unit("mul", 2000, 1, op.Mul)),
		"unit-pipe":  mk(100, 50, 30, 0.8, unit("add", 500, 1, op.Add), unit("mul", 2000, 2, op.Mul)),
		"unit-fewer": mk(100, 50, 30, 0.8, unit("add", 500, 1, op.Add)),
	}
	for name, lib := range variants {
		if hash(lib) == ref {
			t.Errorf("library variant %s did not change the hash", name)
		}
	}

	if hash(nil) != hash(library.NCRLike()) {
		t.Error("nil library does not hash as the NCR default")
	}
}

// TestCanonicalConcurrent: hashing is a pure read of the (frozen)
// request; 32 goroutines hashing the same graph must agree bytewise.
// Run under -race this also proves Canonical takes no locks it needs.
func TestCanonicalConcurrent(t *testing.T) {
	g := benchmarks.EWF().Graph
	cfg := core.Config{CS: 17}
	want, err := Canonical(g, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([]Hash, 32)
	errs := make([]error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = Canonical(g, nil, cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 32; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got[i] != want {
			t.Errorf("goroutine %d: hash %s != %s", i, got[i], want)
		}
	}
}
