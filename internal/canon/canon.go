// Package canon produces content hashes of a synthesis request — the
// triple (DFG, library, config) — so a long-running server can answer
// identical requests from a cache instead of re-synthesizing them.
//
// Two hashes are exposed, one per cache concern:
//
//   - Canonical is the cache index: a structural hash computed with the
//     hash-consing idiom of internal/symb, insensitive to node names
//     and node insertion order. Isomorphic graphs — the same DAG
//     resubmitted under fresh signal names, or rebuilt in a different
//     node order — land in the same cache bucket, so iterative flows
//     that regenerate their designs per session still hit.
//   - Fingerprint is the cache guard: a strict hash over every byte of
//     observable request content, names and order included. Served
//     responses embed names (schedules, netlists), so a cached body is
//     only byte-identical to fresh synthesis when the fingerprints
//     match exactly; the cache verifies it on every hit.
//
// Both hashes are sensitive to every semantic field: operation kinds,
// argument positions, cycle counts, chaining delays, mutual-exclusion
// tags, folded-loop bodies, every library cost parameter and unit, and
// every Config knob that can change the produced design (CS, Limits,
// ClockNs, Latency, PipelinedOps, Style, Weights, RegisterInputs,
// Optimize, Lint, NoTrace, and the normalized resource caps). The
// fields that provably cannot change a result — Parallelism (identical
// results at every setting, see DESIGN.md §7) and Timeout — are
// excluded, so retuning them still hits the cache.
//
// # Graph canonicalization
//
// Node colors are interned bottom-up exactly like symb's expression
// DAGs: a node's color is a digest of its operator, annotations, and
// its arguments' colors in operand order, so structurally equal
// subgraphs collapse to equal colors regardless of how they were named
// or ordered. Primary inputs start indistinguishable and are separated
// by position-aware Weisfeiler-Leman refinement: each round recolors an
// input by the multiset of (consumer color, operand position) pairs it
// feeds, then recomputes node colors, until the input partition is
// stable (or a fixed round cap, which only affects collision quality,
// never isomorphism-invariance). Inputs the refinement cannot separate
// keep their shared class color — no tie-break ever consults a name or
// a declaration position, so isomorphic graphs always hash equal. The
// price is one-sided: two non-isomorphic graphs that differ only in how
// refinement-tied inputs are wired can collide into the same bucket,
// where the Fingerprint guard keeps their entries apart — a shared
// bucket, never a wrong result.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/guard"
	"repro/internal/library"
)

// Hash is a 256-bit content hash.
type Hash [sha256.Size]byte

// String renders the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// IsZero reports whether the hash is the zero value (never a real hash
// of a request).
func (h Hash) IsZero() bool { return h == Hash{} }

// Canonical returns the order- and name-insensitive content hash of the
// request; see the package comment. A nil library hashes as the default
// (library.NCRLike), matching what synthesis would resolve it to.
func Canonical(g *dfg.Graph, lib *library.Library, cfg core.Config) (Hash, error) {
	cg, err := canonicalizeGraph(g)
	if err != nil {
		return Hash{}, err
	}
	return digest("canon/v1", cg.hash[:], hashLibrary(lib), hashConfig(cfg)), nil
}

// Fingerprint returns the strict content hash of the request: names,
// node order, and every semantic field. Two requests with equal
// fingerprints produce byte-identical synthesis artifacts.
func Fingerprint(g *dfg.Graph, lib *library.Library, cfg core.Config) (Hash, error) {
	fp, err := fingerprintGraph(g)
	if err != nil {
		return Hash{}, err
	}
	return digest("fp/v1", fp[:], hashLibrary(lib), hashConfig(cfg)), nil
}

// digest hashes a domain-separation tag plus any number of byte chunks,
// length-prefixing each chunk so concatenations cannot collide.
func digest(tag string, chunks ...[]byte) Hash {
	h := sha256.New()
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(tag)))
	h.Write(n[:])
	h.Write([]byte(tag))
	for _, c := range chunks {
		binary.BigEndian.PutUint64(n[:], uint64(len(c)))
		h.Write(n[:])
		h.Write(c)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// enc is an append-only buffer with fixed-width primitive encoders; all
// multi-byte values are big-endian so encodings are platform-stable.
type enc struct{ b []byte }

func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) u64(v uint64)   { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)    { e.u64(uint64(v)) }
func (e *enc) f64(v float64)  { e.u64(math.Float64bits(v)) }
func (e *enc) bool(v bool)    { e.b = append(e.b, b2u(v)) }
func (e *enc) raw(p []byte)   { e.b = append(e.b, p...) }
func (e *enc) hash(h Hash)    { e.b = append(e.b, h[:]...) }

func b2u(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// --- Library hashing -------------------------------------------------

// hashLibrary digests every cost-model parameter and every unit cell.
// Unit names are semantic — Config.Limits and sweep summaries reference
// them — so they are included; the library's own display name is not.
func hashLibrary(lib *library.Library) []byte {
	if lib == nil {
		lib = library.NCRLike()
	}
	var e enc
	e.f64(lib.RegArea)
	e.f64(lib.MuxBase)
	e.f64(lib.MuxStep)
	e.f64(lib.MuxCurve)
	units := append([]*library.Unit(nil), lib.Units()...)
	sort.Slice(units, func(i, j int) bool { return units[i].Name < units[j].Name })
	e.u64(uint64(len(units)))
	for _, u := range units {
		e.str(u.Name)
		e.f64(u.Area)
		e.u64(uint64(u.Stages))
		e.u64(uint64(len(u.Ops)))
		for _, k := range u.Ops { // sorted by library.Add
			e.u64(uint64(k))
		}
	}
	h := digest("lib/v1", e.b)
	return h[:]
}

// --- Config hashing --------------------------------------------------

// effectiveLimit mirrors core's knob resolution: 0 selects the default,
// negative disables (encoded as 0 = "no check"), so configurations that
// resolve to the same effective guard hash equal.
func effectiveLimit(knob, def int) int {
	switch {
	case knob == 0:
		return def
	case knob < 0:
		return 0
	default:
		return knob
	}
}

// hashConfig digests every Config field that can influence the produced
// design. Parallelism and Timeout are deliberately excluded (identical
// results at every setting); Lib is hashed separately by the callers.
func hashConfig(cfg core.Config) []byte {
	var e enc
	e.u64(uint64(cfg.CS))
	keys := make([]string, 0, len(cfg.Limits))
	for k := range cfg.Limits {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.i64(int64(cfg.Limits[k]))
	}
	e.f64(cfg.ClockNs)
	e.u64(uint64(cfg.Latency))
	pipelined := append([]string(nil), cfg.PipelinedOps...)
	sort.Strings(pipelined)
	e.u64(uint64(len(pipelined)))
	for _, p := range pipelined {
		e.str(p)
	}
	style := cfg.Style
	if style == 0 {
		style = 1 // core treats 0 as style 1
	}
	e.u64(uint64(style))
	for _, w := range cfg.Weights {
		e.f64(w)
	}
	e.bool(cfg.RegisterInputs)
	e.bool(cfg.Optimize)
	e.bool(cfg.Lint)
	e.bool(cfg.NoTrace)
	e.u64(uint64(effectiveLimit(cfg.MaxNodes, guard.DefaultMaxNodes)))
	e.u64(uint64(effectiveLimit(cfg.MaxCSteps, guard.DefaultMaxCSteps)))
	h := digest("cfg/v1", e.b)
	return h[:]
}

// --- Strict graph fingerprint ---------------------------------------

// fingerprintGraph digests the graph exactly as constructed: name,
// inputs, and nodes in insertion order with their names, operators,
// operand names, and annotations. Folded loops recurse.
func fingerprintGraph(g *dfg.Graph) (Hash, error) {
	if g == nil {
		return Hash{}, fmt.Errorf("canon: nil graph")
	}
	var e enc
	e.str(g.Name)
	ins := g.Inputs()
	e.u64(uint64(len(ins)))
	for _, in := range ins {
		e.str(in)
	}
	nodes := g.Nodes()
	e.u64(uint64(len(nodes)))
	for _, n := range nodes {
		e.str(n.Name)
		e.u64(uint64(n.Op))
		e.u64(uint64(len(n.Args)))
		for _, a := range n.Args {
			e.str(a)
		}
		e.u64(uint64(n.Cycles))
		e.f64(n.DelayNs)
		e.u64(uint64(len(n.Excl)))
		for _, t := range n.Excl {
			e.i64(int64(t.Cond))
			e.i64(int64(t.Branch))
		}
		if n.IsLoop() {
			sub, err := fingerprintGraph(n.Sub)
			if err != nil {
				return Hash{}, err
			}
			e.hash(sub)
			e.str(n.SubOut)
			e.u64(uint64(len(n.SubIns)))
			for _, s := range n.SubIns {
				e.str(s)
			}
		}
	}
	return digest("fpg/v1", e.b), nil
}

// --- Canonical graph hashing ----------------------------------------

// wlMaxRounds caps the refinement loop. The cap bounds cost on graphs
// with very wide input sets; any fixed cap preserves the
// isomorphism-invariance of the result (both copies run the same
// rounds), it only limits how finely non-isomorphic graphs are told
// apart — and the Fingerprint guard absorbs residual collisions.
const wlMaxRounds = 8

// canonGraph is the canonical form of one graph: its hash, the final
// color of every node, and the final (refined) color of every input.
type canonGraph struct {
	hash       Hash
	nodeColor  []Hash          // indexed by NodeID
	inputColor map[string]Hash // input name -> final WL color
}

// canonicalizeGraph computes the order- and name-insensitive canonical
// form. See the package comment for the algorithm.
func canonicalizeGraph(g *dfg.Graph) (*canonGraph, error) {
	if g == nil {
		return nil, fmt.Errorf("canon: nil graph")
	}
	inputs := g.Inputs() // sorted by name: the deterministic seed order
	inputIdx := make(map[string]int, len(inputs))
	for i, in := range inputs {
		inputIdx[in] = i
	}

	// Folded loops canonicalize recursively, once per loop node.
	subs := make(map[dfg.NodeID]*canonGraph)
	for _, n := range g.Nodes() {
		if n.IsLoop() {
			sub, err := canonicalizeGraph(n.Sub)
			if err != nil {
				return nil, fmt.Errorf("canon: loop %q: %w", n.Name, err)
			}
			subs[n.ID] = sub
		}
	}

	topo := g.TopoOrder()

	// nodeColors recomputes every node's color bottom-up from the
	// current input colors. The result is independent of traversal
	// order: a node's color is a pure function of its own fields and
	// its operands' colors.
	nodeColors := func(inCol []Hash) ([]Hash, error) {
		col := make([]Hash, g.Len())
		for _, id := range topo {
			n := g.Node(id)
			var e enc
			if sub := subs[id]; sub != nil {
				e.str("loop")
				e.hash(sub.hash)
				out, ok := n.Sub.Lookup(n.SubOut)
				if !ok {
					return nil, fmt.Errorf("canon: loop %q: unknown sub output %q", n.Name, n.SubOut)
				}
				e.hash(sub.nodeColor[out.ID])
			} else {
				e.str("op")
				e.u64(uint64(n.Op))
			}
			e.u64(uint64(n.Cycles))
			e.f64(n.DelayNs)
			e.u64(uint64(len(n.Excl)))
			for _, t := range n.Excl {
				e.i64(int64(t.Cond))
				e.i64(int64(t.Branch))
			}
			e.u64(uint64(len(n.Args)))
			for ai, a := range n.Args {
				if ii, ok := inputIdx[a]; ok {
					e.hash(inCol[ii])
				} else if p, ok := g.Lookup(a); ok {
					e.hash(col[p.ID])
				} else {
					return nil, fmt.Errorf("canon: node %q: unresolved argument %q", n.Name, a)
				}
				if sub := subs[id]; sub != nil {
					// Bind the operand to its role in the sub-graph
					// canonically: by the sub-input's refined color, not
					// its name. Tied sub inputs share a color, so the
					// binding is exactly as fine as the refinement.
					sc, ok := sub.inputColor[n.SubIns[ai]]
					if !ok {
						return nil, fmt.Errorf("canon: loop %q: unknown sub input %q", n.Name, n.SubIns[ai])
					}
					e.hash(sc)
				}
			}
			col[id] = digest("node/v1", e.b)
		}
		return col, nil
	}

	// Position-aware Weisfeiler-Leman refinement of the input colors:
	// every input starts with the same color and is recolored each round
	// by the sorted multiset of (consumer color, operand position) pairs
	// it feeds, until the partition of inputs into color classes is
	// stable or the round cap is reached.
	inCol := make([]Hash, len(inputs))
	seed := digest("in/v1")
	for i := range inCol {
		inCol[i] = seed
	}
	prev := partition(inCol)
	var col []Hash
	var err error
	for round := 0; round < wlMaxRounds; round++ {
		col, err = nodeColors(inCol)
		if err != nil {
			return nil, err
		}
		next := make([]Hash, len(inputs))
		for i := range inputs {
			var sigs [][]byte
			for _, n := range g.Nodes() {
				for ai, a := range n.Args {
					if a == inputs[i] {
						var e enc
						e.hash(col[n.ID])
						e.u64(uint64(ai))
						sigs = append(sigs, e.b)
					}
				}
			}
			sort.Slice(sigs, func(x, y int) bool { return lessBytes(sigs[x], sigs[y]) })
			var e enc
			e.hash(inCol[i])
			for _, s := range sigs {
				e.raw(s)
			}
			next[i] = digest("in-refine/v1", e.b)
		}
		inCol = next
		part := partition(inCol)
		if samePartition(prev, part) {
			break
		}
		prev = part
	}

	// Final colors are the stable WL colors themselves. Inputs the
	// refinement left tied stay tied — deliberately: any tie-break would
	// have to consult a name or a declaration position, and either leaks
	// the very information Canonical promises to be blind to.
	col, err = nodeColors(inCol)
	if err != nil {
		return nil, err
	}
	inColor := make(map[string]Hash, len(inputs))
	for i, in := range inputs {
		inColor[in] = inCol[i]
	}

	// The graph hash covers the input-color and node-color multisets
	// plus the sink (primary output) sub-multiset, so input roles and
	// output structure are both explicit.
	ins := make([][]byte, 0, len(inputs))
	for i := range inputs {
		ins = append(ins, inCol[i][:])
	}
	all := make([][]byte, 0, len(col))
	var sinks [][]byte
	for _, n := range g.Nodes() {
		all = append(all, col[n.ID][:])
		if len(n.Succs()) == 0 {
			sinks = append(sinks, col[n.ID][:])
		}
	}
	sort.Slice(ins, func(a, b int) bool { return lessBytes(ins[a], ins[b]) })
	sort.Slice(all, func(a, b int) bool { return lessBytes(all[a], all[b]) })
	sort.Slice(sinks, func(a, b int) bool { return lessBytes(sinks[a], sinks[b]) })
	var e enc
	e.u64(uint64(len(inputs)))
	e.u64(uint64(g.Len()))
	for _, c := range ins {
		e.raw(c)
	}
	e.str("nodes")
	for _, c := range all {
		e.raw(c)
	}
	e.str("sinks")
	for _, c := range sinks {
		e.raw(c)
	}
	return &canonGraph{hash: digest("g/v1", e.b), nodeColor: col, inputColor: inColor}, nil
}

// partition maps a color list to class ids, for stability comparison.
func partition(cols []Hash) []int {
	classes := make(map[Hash]int)
	out := make([]int, len(cols))
	for i, c := range cols {
		id, ok := classes[c]
		if !ok {
			id = len(classes)
			classes[c] = id
		}
		out[i] = id
	}
	return out
}

func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessBytes(a, b []byte) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
