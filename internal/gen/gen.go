// Package gen synthesizes large data-flow graphs for scale testing:
// seeded, reproducible layered random DAGs whose size, width, fan-in and
// op-kind mix are parameters, plus unrolled real-ish kernels (FIR filter
// taps, dense matrix products). The paper's six benchmarks top out at
// ~34 operations; these generators supply the 10k–100k-node inputs the
// scale ladder (internal/experiments, cmd/hlsbench -scale) and the
// incremental re-synthesis tests stress the engine with.
//
// Every generated graph is acyclic and weakly connected by
// construction, every primary input is consumed, and the structure is a
// pure function of the Config — the same seed always yields the same
// graph, byte for byte, so baselines pinned in BENCH_scale.json stay
// comparable across machines.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/dfg"
	"repro/internal/guard"
	"repro/internal/op"
)

// Config parameterizes one synthetic graph. The zero value of every
// field except Nodes selects a sensible default; Nodes is required.
type Config struct {
	// Nodes is the operation count (required, 1..guard.DefaultMaxNodes).
	Nodes int

	// Width is the target number of operations per layer; the layer
	// count is ⌈Nodes/Width⌉, so Width controls the depth/parallelism
	// trade-off. 0 defaults to ⌈√Nodes⌉.
	Width int

	// Inputs is the number of primary input signals. 0 defaults to
	// Width; values above min(Width, Nodes) are clamped so the first
	// layer can consume every input.
	Inputs int

	// Ops is the operation-kind mix sampled uniformly per node. Only
	// binary kinds keep the connectivity guarantee; an all-unary mix can
	// make Generate fail with a connectivity error. nil defaults to
	// {Add, Sub, Mul, And, Or, Xor}.
	Ops []op.Kind

	// MulCycles sets the cycle count of generated multiplications
	// (the paper's 2-cycle multipliers); 0 keeps the 1-cycle default.
	MulCycles int

	// Locality is how many preceding layers (beyond the immediately
	// previous one) supply second operands; 0 defaults to 2. Larger
	// values produce longer value lifetimes and wider mux trees.
	Locality int

	// Seed drives the deterministic pseudo-random stream.
	Seed int64
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.Width == 0 {
		w := 1
		for w*w < c.Nodes {
			w++
		}
		c.Width = w
	}
	if c.Inputs == 0 {
		c.Inputs = c.Width
	}
	if lim := min(c.Width, c.Nodes); c.Inputs > lim {
		c.Inputs = lim
	}
	if c.Ops == nil {
		c.Ops = []op.Kind{op.Add, op.Sub, op.Mul, op.And, op.Or, op.Xor}
	}
	if c.Locality == 0 {
		c.Locality = 2
	}
	return c
}

// validate rejects configs the guard limits or the dfg invariants would
// reject later, with a clearer message and before any allocation.
func (c Config) validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("gen: Nodes %d < 1", c.Nodes)
	}
	if c.Nodes > guard.DefaultMaxNodes {
		return &guard.LimitError{What: "generated graph nodes", Got: c.Nodes, Max: guard.DefaultMaxNodes}
	}
	if c.Width < 1 {
		return fmt.Errorf("gen: Width %d < 1", c.Width)
	}
	if c.Inputs < 1 {
		return fmt.Errorf("gen: Inputs %d < 1", c.Inputs)
	}
	if c.MulCycles < 0 || c.MulCycles > guard.DefaultMaxCSteps {
		return &guard.LimitError{What: "multicycle count", Got: c.MulCycles, Max: guard.DefaultMaxCSteps}
	}
	if c.Locality < 1 {
		return fmt.Errorf("gen: Locality %d < 1", c.Locality)
	}
	for _, k := range c.Ops {
		if !k.Valid() {
			return fmt.Errorf("gen: invalid op kind %d in mix", int(k))
		}
	}
	return nil
}

// Generate builds the synthetic graph described by cfg. The result is
// validated (dfg.Validate plus weak connectivity) before it is returned.
func Generate(cfg Config) (*dfg.Graph, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := dfg.New(fmt.Sprintf("gen-n%d-s%d", cfg.Nodes, cfg.Seed))

	// Signals are numbered for the union-find: inputs first, then one
	// per node output, in creation order.
	names := make([]string, 0, cfg.Inputs+cfg.Nodes)
	uf := newUnionFind(cfg.Inputs + cfg.Nodes)
	for i := 0; i < cfg.Inputs; i++ {
		name := fmt.Sprintf("in%d", i)
		if err := g.AddInput(name); err != nil {
			return nil, err
		}
		names = append(names, name)
	}

	// stranded scans the signal list for the oldest signal not yet in
	// component 0 (in0's component); choosing it as a second operand
	// merges one component per binary node, which is what makes the
	// result weakly connected.
	nextStranded := 0
	stranded := func() (int, bool) {
		for nextStranded < len(names) {
			if uf.find(nextStranded) != uf.find(0) {
				return nextStranded, true
			}
			nextStranded++
		}
		return 0, false
	}

	layerStart := cfg.Inputs // signal index where the previous layer begins
	made := 0
	for made < cfg.Nodes {
		layer := min(cfg.Width, cfg.Nodes-made)
		layerBase := len(names)
		// windowLo bounds the pool of earlier signals second operands
		// draw from: the previous Locality layers (clamped to 0).
		windowLo := layerBase - cfg.Locality*cfg.Width
		if windowLo < 0 {
			windowLo = 0
		}
		for i := 0; i < layer; i++ {
			k := cfg.Ops[rng.Intn(len(cfg.Ops))]
			// First operand: round-robin over the inputs for the first
			// layer (so every input is consumed), random from the
			// previous layer otherwise (so every layer deepens the
			// critical path by exactly one op level).
			var a1 int
			if made == 0 && i < layer { // first layer
				a1 = i % cfg.Inputs
			}
			if layerBase > cfg.Inputs { // later layers
				a1 = layerStart + rng.Intn(layerBase-layerStart)
			}
			args := []string{names[a1]}
			a2 := -1
			if k.Arity() == 2 {
				if s, ok := stranded(); ok && s != a1 {
					a2 = s
				} else {
					a2 = windowLo + rng.Intn(layerBase-windowLo)
				}
				args = append(args, names[a2])
			}
			name := fmt.Sprintf("n%d", made+i)
			id, err := g.AddOp(name, k, args...)
			if err != nil {
				return nil, fmt.Errorf("gen: %w", err)
			}
			if k == op.Mul && cfg.MulCycles > 1 {
				if err := g.SetCycles(id, cfg.MulCycles); err != nil {
					return nil, fmt.Errorf("gen: %w", err)
				}
			}
			out := len(names)
			names = append(names, name)
			uf.union(out, a1)
			if a2 >= 0 {
				uf.union(out, a2)
			}
		}
		layerStart = layerBase
		made += layer
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated invalid graph: %w", err)
	}
	if _, bad := stranded(); bad {
		return nil, fmt.Errorf("gen: graph is not connected (op mix %v has too few binary kinds)", cfg.Ops)
	}
	return g, nil
}

// unionFind is a plain union-find with path halving and union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FIR returns an unrolled taps-tap FIR filter body: taps multiplications
// (x_i · c_i) reduced by a balanced adder tree — the classic large DSP
// kernel, 2·taps−1 operations. mulCycles > 1 makes the products
// multicycle (0 or 1 keeps them single-cycle).
func FIR(taps, mulCycles int) (*dfg.Graph, error) {
	if taps < 1 {
		return nil, fmt.Errorf("gen: FIR taps %d < 1", taps)
	}
	if 2*taps-1 > guard.DefaultMaxNodes {
		return nil, &guard.LimitError{What: "generated graph nodes", Got: 2*taps - 1, Max: guard.DefaultMaxNodes}
	}
	g := dfg.New(fmt.Sprintf("fir%d", taps))
	level := make([]string, 0, taps)
	for i := 0; i < taps; i++ {
		x, c := fmt.Sprintf("x%d", i), fmt.Sprintf("c%d", i)
		if err := g.AddInput(x); err != nil {
			return nil, err
		}
		if err := g.AddInput(c); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("p%d", i)
		id, err := g.AddOp(name, op.Mul, x, c)
		if err != nil {
			return nil, err
		}
		if mulCycles > 1 {
			if err := g.SetCycles(id, mulCycles); err != nil {
				return nil, err
			}
		}
		level = append(level, name)
	}
	depth := 0
	for len(level) > 1 {
		next := make([]string, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			name := fmt.Sprintf("s%d_%d", depth, i/2)
			if _, err := g.AddOp(name, op.Add, level[i], level[i+1]); err != nil {
				return nil, err
			}
			next = append(next, name)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		depth++
	}
	return g, nil
}

// MatMul returns an unrolled n×n dense matrix product: n³
// multiplications and n²(n−1) additions in row-scan order (a straight
// unrolled triple loop, the memory-heavy array kernel shape).
func MatMul(n, mulCycles int) (*dfg.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: MatMul size %d < 1", n)
	}
	if total := n*n*n + n*n*(n-1); total > guard.DefaultMaxNodes {
		return nil, &guard.LimitError{What: "generated graph nodes", Got: total, Max: guard.DefaultMaxNodes}
	}
	g := dfg.New(fmt.Sprintf("matmul%d", n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if err := g.AddInput(fmt.Sprintf("a%d_%d", i, j)); err != nil {
				return nil, err
			}
			if err := g.AddInput(fmt.Sprintf("b%d_%d", i, j)); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := ""
			for k := 0; k < n; k++ {
				p := fmt.Sprintf("m%d_%d_%d", i, j, k)
				id, err := g.AddOp(p, op.Mul, fmt.Sprintf("a%d_%d", i, k), fmt.Sprintf("b%d_%d", k, j))
				if err != nil {
					return nil, err
				}
				if mulCycles > 1 {
					if err := g.SetCycles(id, mulCycles); err != nil {
						return nil, err
					}
				}
				if acc == "" {
					acc = p
					continue
				}
				sum := fmt.Sprintf("c%d_%d_%d", i, j, k)
				if _, err := g.AddOp(sum, op.Add, acc, p); err != nil {
					return nil, err
				}
				acc = sum
			}
		}
	}
	return g, nil
}
