package gen

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dfg"
	"repro/internal/guard"
	"repro/internal/mfs"
	"repro/internal/op"
	"repro/internal/sched"
)

// fingerprint serializes a graph's full structure — names, ops, args,
// cycles — so two graphs can be compared for exact equality.
func fingerprint(g *dfg.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|", g.Name)
	for _, in := range g.Inputs() {
		fmt.Fprintf(&b, "i:%s|", in)
	}
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "%d:%s:%s:%v:%d|", n.ID, n.Name, n.Op, n.Args, n.Cycles)
	}
	return b.String()
}

func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, 1 << 40} {
		cfg := Config{Nodes: 500, Seed: seed}
		a, err := Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d second run: %v", seed, err)
		}
		if fingerprint(a) != fingerprint(b) {
			t.Fatalf("seed %d: two runs produced different graphs", seed)
		}
	}
	a, _ := Generate(Config{Nodes: 500, Seed: 1})
	b, _ := Generate(Config{Nodes: 500, Seed: 2})
	if fingerprint(a) == fingerprint(b) {
		t.Fatal("different seeds produced identical graphs")
	}
}

// connected re-derives weak connectivity from scratch, independently of
// the generator's internal union-find.
func connected(g *dfg.Graph) bool {
	idx := make(map[string]int, len(g.Inputs())+g.Len())
	next := 0
	for _, in := range g.Inputs() {
		idx[in] = next
		next++
	}
	for _, n := range g.Nodes() {
		idx[n.Name] = next
		next++
	}
	uf := newUnionFind(next)
	for _, n := range g.Nodes() {
		for _, a := range n.Args {
			uf.union(idx[n.Name], idx[a])
		}
	}
	root := uf.find(0)
	for i := 1; i < next; i++ {
		if uf.find(i) != root {
			return false
		}
	}
	return true
}

func TestGenerateWellFormed(t *testing.T) {
	cases := []Config{
		{Nodes: 1},
		{Nodes: 2, Width: 1},
		{Nodes: 97, Width: 5, Inputs: 3, Seed: 7},
		{Nodes: 1000, Width: 50, MulCycles: 2, Seed: 3},
		{Nodes: 300, Width: 300, Inputs: 300, Locality: 1, Seed: 9},
	}
	for _, cfg := range cases {
		t.Run(fmt.Sprintf("n%d-w%d", cfg.Nodes, cfg.Width), func(t *testing.T) {
			g, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if g.Len() != cfg.Nodes {
				t.Fatalf("got %d nodes, want %d", g.Len(), cfg.Nodes)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("invalid graph: %v", err)
			}
			if !connected(g) {
				t.Fatal("graph is not weakly connected")
			}
			// Schedulable: frames exist at the critical-path bound, and a
			// full MFS run succeeds and verifies.
			cs := g.CriticalPathCycles()
			if _, err := sched.ComputeFrames(g, cs, 0); err != nil {
				t.Fatalf("frames at critical path %d: %v", cs, err)
			}
			s, err := mfs.Schedule(g, mfs.Options{CS: cs + 2})
			if err != nil {
				t.Fatalf("mfs: %v", err)
			}
			if err := s.Verify(nil); err != nil {
				t.Fatalf("schedule verify: %v", err)
			}
		})
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Nodes: 0}); err == nil {
		t.Error("Nodes 0 accepted")
	}
	if _, err := Generate(Config{Nodes: guard.DefaultMaxNodes + 1}); err == nil {
		t.Error("over-limit Nodes accepted")
	}
	var le *guard.LimitError
	_, err := Generate(Config{Nodes: guard.DefaultMaxNodes + 1})
	if !errors.As(err, &le) {
		t.Errorf("want LimitError, got %v", err)
	}
	if _, err := Generate(Config{Nodes: 10, Ops: []op.Kind{op.Kind(99)}}); err == nil {
		t.Error("invalid op kind accepted")
	}
	if _, err := Generate(Config{Nodes: 5, MulCycles: -1}); err == nil {
		t.Error("negative MulCycles accepted")
	}
}

func TestFIR(t *testing.T) {
	for _, taps := range []int{1, 2, 7, 16} {
		g, err := FIR(taps, 2)
		if err != nil {
			t.Fatalf("taps %d: %v", taps, err)
		}
		if want := 2*taps - 1; g.Len() != want {
			t.Fatalf("taps %d: got %d ops, want %d", taps, g.Len(), want)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("taps %d: %v", taps, err)
		}
		if !connected(g) {
			t.Fatalf("taps %d: not connected", taps)
		}
		if outs := g.Outputs(); len(outs) != 1 {
			t.Fatalf("taps %d: %d outputs, want 1 (tree root)", taps, len(outs))
		}
	}
	if _, err := FIR(0, 1); err == nil {
		t.Error("FIR(0) accepted")
	}
}

func TestMatMul(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		g, err := MatMul(n, 2)
		if err != nil {
			t.Fatalf("n %d: %v", n, err)
		}
		if want := n*n*n + n*n*(n-1); g.Len() != want {
			t.Fatalf("n %d: got %d ops, want %d", n, g.Len(), want)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n %d: %v", n, err)
		}
		if outs := g.Outputs(); len(outs) != n*n {
			t.Fatalf("n %d: %d outputs, want %d", n, len(outs), n*n)
		}
	}
	if _, err := MatMul(0, 1); err == nil {
		t.Error("MatMul(0) accepted")
	}
}

// FuzzGenerate drives arbitrary config bounds through the generator: it
// must either return a clear error or a valid, connected graph — never
// panic, never emit a malformed graph.
func FuzzGenerate(f *testing.F) {
	f.Add(100, 10, 4, 2, int64(1), 2, 3)
	f.Add(1, 0, 0, 0, int64(0), 0, 0)
	f.Add(5000, 1, 1, 1, int64(-3), 1, 1)
	f.Add(-7, -2, -9, -1, int64(5), -4, 100)
	f.Fuzz(func(t *testing.T, nodes, width, inputs, mulCycles int, seed int64, locality, nkinds int) {
		if nodes > 20000 { // keep individual fuzz cases fast
			nodes = nodes%20000 + 1
		}
		var ops []op.Kind
		if nkinds > 0 {
			all := []op.Kind{op.Add, op.Sub, op.Mul, op.And, op.Or, op.Xor, op.Not, op.Neg}
			for i := 0; i < nkinds%len(all)+1; i++ {
				ops = append(ops, all[i])
			}
		}
		cfg := Config{
			Nodes: nodes, Width: width, Inputs: inputs,
			MulCycles: mulCycles, Seed: seed, Locality: locality, Ops: ops,
		}
		g, err := Generate(cfg)
		if err != nil {
			return // rejection is fine; panics and bad graphs are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("cfg %+v: invalid graph: %v", cfg, err)
		}
		if !connected(g) {
			t.Fatalf("cfg %+v: accepted but not connected", cfg)
		}
		if g.Len() != nodes {
			t.Fatalf("cfg %+v: got %d nodes, want %d", cfg, g.Len(), nodes)
		}
	})
}
