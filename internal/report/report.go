// Package report formats the fixed-width text tables the experiment
// harness prints when regenerating the paper's Tables 1 and 2.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them column-aligned.
type Table struct {
	Title   string
	columns []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, columns: columns}
}

// Add appends a row; missing cells render empty, extras are dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Addf appends a row of formatted cells: each argument is rendered with
// %v.
func (t *Table) Addf(cells ...interface{}) {
	ss := make([]string, len(cells))
	for i, c := range cells {
		ss[i] = fmt.Sprintf("%v", c)
	}
	t.Add(ss...)
}

// Len reports the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.columns))
	for i, c := range t.columns {
		width[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.columns)
	sep := make([]string, len(t.columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}
