package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("Table 1: results", "Ex", "T", "FUs")
	tb.Add("#1", "4", "*,++")
	tb.Addf("#2", 5, 3.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Table 1: results" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Ex") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "--") {
		t.Errorf("separator = %q", lines[2])
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
	// Columns align: every data line has the same prefix width up to col 2.
	idx := strings.Index(lines[1], "T")
	for _, l := range lines[3:] {
		if len(l) <= idx {
			t.Errorf("short row %q", l)
		}
	}
	if !strings.Contains(out, "3.5") {
		t.Error("Addf cell missing")
	}
}

func TestRowPadding(t *testing.T) {
	tb := New("", "A", "B")
	tb.Add("only")
	tb.Add("x", "y", "dropped")
	out := tb.String()
	if strings.Contains(out, "dropped") {
		t.Error("extra cell not dropped")
	}
	if !strings.Contains(out, "only") {
		t.Error("short row lost")
	}
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title should not emit a blank line")
	}
}
