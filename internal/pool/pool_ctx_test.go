package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guard"
)

// TestMapCtxPreCancelled: an already-cancelled context returns promptly
// without dispatching a single call.
func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	for _, workers := range []int{1, 8} {
		start := time.Now()
		out, err := MapCtx(ctx, workers, 1000, func(i int) (int, error) {
			calls.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if out != nil {
			t.Fatalf("workers=%d: got partial results on cancelled ctx", workers)
		}
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Fatalf("workers=%d: pre-cancelled MapCtx took %v", workers, d)
		}
	}
	if calls.Load() != 0 {
		t.Errorf("pre-cancelled ctx still dispatched %d calls", calls.Load())
	}
}

// TestMapCtxMidFlightCancel: cancelling while workers are busy stops the
// run promptly and surfaces ctx.Err(), never a partial result.
func TestMapCtxMidFlightCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	type result struct {
		out []int
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, err := MapCtx(ctx, 4, 100, func(i int) (int, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			// Cooperative worker: block until cancelled or released.
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-release:
				return i, nil
			}
		})
		done <- result{out, err}
	}()
	<-started
	cancel()
	start := time.Now()
	select {
	case r := <-done:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", r.err)
		}
		if r.out != nil {
			t.Fatal("partial results returned from cancelled run")
		}
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Fatalf("cancelled MapCtx returned after %v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("MapCtx did not return after cancellation")
	}
	close(release)
}

// TestMapCtxDeadline: an expiring deadline surfaces DeadlineExceeded.
func TestMapCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := MapCtx(ctx, 2, 1000, func(i int) (int, error) {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(time.Second):
			return i, nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestMapCtxBackgroundMatchesMap: with a never-done ctx the Ctx variant
// is exactly Map.
func TestMapCtxBackgroundMatchesMap(t *testing.T) {
	fn := func(i int) (int, error) { return 3 * i, nil }
	a, errA := Map(8, 64, fn)
	b, errB := MapCtx(context.Background(), 8, 64, fn)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("out[%d]: %d != %d", i, a[i], b[i])
		}
	}
}

// TestSearchMinCtxPreCancelled mirrors the Map test for the speculative
// search.
func TestSearchMinCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		start := time.Now()
		idx, _, err := SearchMinCtx(ctx, workers, 1000, func(i int) (string, error) {
			return "found", nil
		})
		if !errors.Is(err, context.Canceled) || idx != -1 {
			t.Fatalf("workers=%d: (%d, %v), want (-1, context.Canceled)", workers, idx, err)
		}
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Fatalf("workers=%d: pre-cancelled SearchMinCtx took %v", workers, d)
		}
	}
}

// TestSearchMinCtxMidFlightCancel: cancellation between probe windows
// aborts the search promptly.
func TestSearchMinCtxMidFlightCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	type result struct {
		idx int
		err error
	}
	done := make(chan result, 1)
	go func() {
		idx, _, err := SearchMinCtx(ctx, 4, 10_000, func(i int) (int, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(time.Second):
				return 0, errors.New("infeasible")
			}
		})
		done <- result{idx, err}
	}()
	<-started
	cancel()
	start := time.Now()
	select {
	case r := <-done:
		if !errors.Is(r.err, context.Canceled) || r.idx != -1 {
			t.Fatalf("(%d, %v), want (-1, context.Canceled)", r.idx, r.err)
		}
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Fatalf("cancelled SearchMinCtx returned after %v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SearchMinCtx did not return after cancellation")
	}
}

// TestWorkerPanicBecomesError: a panicking worker function surfaces as a
// *guard.InternalError through the normal error path instead of crashing
// the process, on both primitives and at both worker counts.
func TestWorkerPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 10, func(i int) (int, error) {
			if i == 2 {
				panic("worker bug")
			}
			return i, nil
		})
		var ie *guard.InternalError
		if !errors.As(err, &ie) {
			t.Fatalf("Map workers=%d: err = %v, want *guard.InternalError", workers, err)
		}
		if ie.Value != "worker bug" {
			t.Errorf("panic value = %v", ie.Value)
		}

		idx, _, err := SearchMin(workers, 3, func(i int) (int, error) {
			panic("probe bug")
		})
		if idx != -1 {
			t.Fatalf("SearchMin workers=%d: idx = %d", workers, idx)
		}
		if !errors.As(err, &ie) {
			t.Fatalf("SearchMin workers=%d: err = %v, want *guard.InternalError", workers, err)
		}
	}
}
