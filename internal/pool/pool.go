// Package pool is the bounded worker pool behind every parallel hot
// path of the synthesis engine: time-constraint sweeps (core.Sweep,
// core.SweepGraphs), the speculative resource-constrained search in MFS,
// and the experiment tables. Its primitives are deterministic: results
// come back in input order, the error reported is the one the equivalent
// sequential loop would have reported, and worker functions are expected
// to be pure (no shared mutable state), so every parallelism setting —
// including 1 — produces byte-identical output.
//
// Two hardening guarantees hold on every path:
//
//   - Cancellation: the Ctx variants stop dispatching new indices as
//     soon as ctx is done and return ctx.Err() (context.Canceled or
//     context.DeadlineExceeded), never a partial result. In-flight
//     calls are allowed to finish; worker functions that can run long
//     should observe the same ctx themselves so a cancelled pool call
//     returns promptly.
//   - Panic isolation: a worker function that panics does not crash the
//     process. The panic is recovered on the worker goroutine and
//     converted into a *guard.InternalError carrying the stack, which
//     then flows through the normal error path.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/guard"
)

// EmptySearchError reports a SearchMin or SearchMinCtx call over an
// empty candidate range (n <= 0): no candidate was ever probed, so
// there is no committed index and no last probe error to surface.
// Before this type existed the call returned (-1, zero, nil) — a
// success-shaped failure whose nil error masked that the search never
// ran, and whose -1 index crashed callers that indexed with it.
type EmptySearchError struct {
	// N is the candidate count the search was asked to cover.
	N int
}

func (e *EmptySearchError) Error() string {
	return fmt.Sprintf("search over %d candidates: no candidate was probed", e.N)
}

// Size resolves a parallelism setting to a worker count: n > 0 is used
// as given, anything else selects runtime.GOMAXPROCS(0). Callers thread
// a user-facing knob (core.Config.Parallelism, mfs.Options.Parallelism)
// straight through, so 0 means "use the machine" and 1 means
// "sequential".
func Size(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// call invokes fn(i) with the pool's panic boundary: a panic inside fn
// becomes a *guard.InternalError instead of unwinding the worker
// goroutine (which would crash the whole process, since nothing above a
// goroutine's entry point can recover it).
func call[T any](fn func(i int) (T, error), i int) (v T, err error) {
	defer guard.Recover("pool worker", &err)
	return fn(i)
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the n results in index order. If any call fails, Map returns
// the error with the smallest index — exactly the error a sequential
// loop would have stopped on — and workers stop picking up new indices
// (in-flight calls still complete). fn must be safe for concurrent use.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with cancellation: workers stop dispatching new indices
// once ctx is done, and the call returns ctx.Err() instead of a partial
// result. With a never-done ctx the semantics (and the results) are
// exactly Map's.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		out := make([]T, n)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := call(fn, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return out, nil
	}

	out := make([]T, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = n
		first  error
		wg     sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() || ctx.Err() != nil {
					return
				}
				v, err := call(fn, i)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if i < errIdx {
						errIdx, first = i, err
					}
					mu.Unlock()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	// Cancellation dominates: a cancelled run may have skipped indices,
	// so its partial output must never be observable.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if first != nil {
		return nil, first
	}
	return out, nil
}

// SearchMin returns the smallest i in [0, n) for which fn succeeds,
// together with fn's result — the parallel form of the classic
// "try cs = lo, lo+1, ... until one fits" loop. Windows of `workers`
// consecutive candidates are probed speculatively and the smallest
// success in the earliest non-empty window commits; every candidate
// below it has provably failed, so the committed index (and, for a
// deterministic fn, the committed result) is exactly the sequential
// loop's. When no candidate succeeds, the error of the last (highest)
// candidate is returned, again matching the sequential loop. Probes
// above the committed index are wasted work, never observable state:
// fn must be side-effect free and safe for concurrent use.
//
// The error contract: a success returns (i, v, nil) with 0 <= i < n;
// every failure returns index -1 with a non-nil error — the last
// candidate's error when all n probes failed, ctx.Err() on
// cancellation, and a *EmptySearchError when n <= 0 (no candidate
// exists to probe, so no probe error can stand in for the failure).
// The index is never -1 alongside a nil error.
func SearchMin[T any](workers, n int, fn func(i int) (T, error)) (int, T, error) {
	return SearchMinCtx(context.Background(), workers, n, fn)
}

// SearchMinCtx is SearchMin with cancellation: no new probe window
// starts once ctx is done, and the call returns ctx.Err() with index -1
// instead of committing a result. With a never-done ctx the semantics
// (and the committed index) are exactly SearchMin's.
func SearchMinCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) (int, T, error) {
	var zero T
	var lastErr error
	if n <= 0 {
		// Checked on both the sequential and windowed paths' behalf:
		// neither loop body runs for n <= 0, and without this the call
		// would fall through to `return -1, zero, lastErr` with lastErr
		// never assigned — the success-shaped (-1, zero, nil) failure.
		if err := ctx.Err(); err != nil {
			return -1, zero, err
		}
		return -1, zero, &EmptySearchError{N: n}
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return -1, zero, err
			}
			v, err := call(fn, i)
			if err == nil {
				return i, v, nil
			}
			lastErr = err
		}
		if err := ctx.Err(); err != nil {
			return -1, zero, err
		}
		return -1, zero, lastErr
	}

	type probe struct {
		v   T
		err error
	}
	for base := 0; base < n; base += workers {
		if err := ctx.Err(); err != nil {
			return -1, zero, err
		}
		w := workers
		if base+w > n {
			w = n - base
		}
		results := make([]probe, w)
		var wg sync.WaitGroup
		//hls:ctxok spawns at most `workers` probes; the enclosing window loop polls ctx before and after every window
		for j := 0; j < w; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				v, err := call(fn, base+j)
				results[j] = probe{v, err}
			}(j)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return -1, zero, err
		}
		for j := 0; j < w; j++ {
			if results[j].err == nil {
				return base + j, results[j].v, nil
			}
		}
		lastErr = results[w-1].err
	}
	if err := ctx.Err(); err != nil {
		return -1, zero, err
	}
	return -1, zero, lastErr
}
