// Package pool is the bounded worker pool behind every parallel hot
// path of the synthesis engine: time-constraint sweeps (core.Sweep,
// core.SweepGraphs), the speculative resource-constrained search in MFS,
// and the experiment tables. Its primitives are deterministic: results
// come back in input order, the error reported is the one the equivalent
// sequential loop would have reported, and worker functions are expected
// to be pure (no shared mutable state), so every parallelism setting —
// including 1 — produces byte-identical output.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Size resolves a parallelism setting to a worker count: n > 0 is used
// as given, anything else selects runtime.GOMAXPROCS(0). Callers thread
// a user-facing knob (core.Config.Parallelism, mfs.Options.Parallelism)
// straight through, so 0 means "use the machine" and 1 means
// "sequential".
func Size(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the n results in index order. If any call fails, Map returns
// the error with the smallest index — exactly the error a sequential
// loop would have stopped on — and workers stop picking up new indices
// (in-flight calls still complete). fn must be safe for concurrent use.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		out := make([]T, n)
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	out := make([]T, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = n
		first  error
		wg     sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if i < errIdx {
						errIdx, first = i, err
					}
					mu.Unlock()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return out, nil
}

// SearchMin returns the smallest i in [0, n) for which fn succeeds,
// together with fn's result — the parallel form of the classic
// "try cs = lo, lo+1, ... until one fits" loop. Windows of `workers`
// consecutive candidates are probed speculatively and the smallest
// success in the earliest non-empty window commits; every candidate
// below it has provably failed, so the committed index (and, for a
// deterministic fn, the committed result) is exactly the sequential
// loop's. When no candidate succeeds, the error of the last (highest)
// candidate is returned, again matching the sequential loop. Probes
// above the committed index are wasted work, never observable state:
// fn must be side-effect free and safe for concurrent use.
func SearchMin[T any](workers, n int, fn func(i int) (T, error)) (int, T, error) {
	var zero T
	var lastErr error
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err == nil {
				return i, v, nil
			}
			lastErr = err
		}
		return -1, zero, lastErr
	}

	type probe struct {
		v   T
		err error
	}
	for base := 0; base < n; base += workers {
		w := workers
		if base+w > n {
			w = n - base
		}
		results := make([]probe, w)
		var wg sync.WaitGroup
		for j := 0; j < w; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				v, err := fn(base + j)
				results[j] = probe{v, err}
			}(j)
		}
		wg.Wait()
		for j := 0; j < w; j++ {
			if results[j].err == nil {
				return base + j, results[j].v, nil
			}
		}
		lastErr = results[w-1].err
	}
	return -1, zero, lastErr
}
