package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestSize(t *testing.T) {
	if got := Size(3); got != 3 {
		t.Errorf("Size(3) = %d", got)
	}
	if got := Size(0); got < 1 {
		t.Errorf("Size(0) = %d, want >= 1", got)
	}
	if got := Size(-2); got < 1 {
		t.Errorf("Size(-2) = %d, want >= 1", got)
	}
}

func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Errorf("Map(_, 0) = %v, %v; want nil, nil", out, err)
	}
}

// TestMapSmallestError checks the determinism guarantee: among several
// failing indices the reported error is the lowest-index one — what a
// sequential loop would have stopped on.
func TestMapSmallestError(t *testing.T) {
	for _, workers := range []int{1, 4, 32} {
		_, err := Map(workers, 50, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("fail at %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Errorf("workers=%d: err = %v, want fail at 3", workers, err)
		}
	}
}

// TestMapWorkerBound checks the pool really is bounded: the peak number
// of concurrently running fn calls never exceeds the requested workers.
func TestMapWorkerBound(t *testing.T) {
	const workers = 4
	var running, peak atomic.Int64
	_, err := Map(workers, 200, func(i int) (int, error) {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer running.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d > %d workers", p, workers)
	}
}

// TestSearchMinMatchesSequential runs SearchMin against its sequential
// definition on a family of feasibility predicates, including
// non-monotone ones (a heuristic scheduler may succeed at cs and fail at
// cs+1), at several worker counts.
func TestSearchMinMatchesSequential(t *testing.T) {
	preds := []func(i int) bool{
		func(i int) bool { return i >= 13 },          // monotone threshold
		func(i int) bool { return i == 0 },           // immediate
		func(i int) bool { return false },            // infeasible everywhere
		func(i int) bool { return i == 29 },          // last candidate only
		func(i int) bool { return i%5 == 4 },         // periodic
		func(i int) bool { return i == 7 || i > 20 }, // non-monotone gap
	}
	const n = 30
	for pi, feasible := range preds {
		fn := func(i int) (string, error) {
			if feasible(i) {
				return fmt.Sprintf("sched@%d", i), nil
			}
			return "", fmt.Errorf("infeasible at %d", i)
		}
		wantIdx, wantV, wantErr := SearchMin(1, n, fn)
		for _, workers := range []int{2, 3, 8, 64} {
			idx, v, err := SearchMin(workers, n, fn)
			if idx != wantIdx || v != wantV {
				t.Errorf("pred %d workers %d: got (%d, %q), want (%d, %q)",
					pi, workers, idx, v, wantIdx, wantV)
			}
			if (err == nil) != (wantErr == nil) ||
				(err != nil && err.Error() != wantErr.Error()) {
				t.Errorf("pred %d workers %d: err = %v, want %v", pi, workers, err, wantErr)
			}
		}
	}
}

// TestSearchMinEmpty pins the empty-search contract: n <= 0 means no
// candidate was ever probed, so the call must fail with a typed
// *EmptySearchError instead of the success-shaped (-1, zero, nil) it
// used to return. The table covers both the sequential (workers <= 1)
// and windowed (workers > 1) paths.
func TestSearchMinEmpty(t *testing.T) {
	for _, tc := range []struct {
		name       string
		workers, n int
	}{
		{"sequential/zero", 1, 0},
		{"sequential/negative", 1, -3},
		{"windowed/zero", 8, 0},
		{"windowed/negative", 8, -3},
		{"resolved-default/zero", Size(0), 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			called := false
			idx, v, err := SearchMin(tc.workers, tc.n, func(i int) (string, error) {
				called = true
				return "never", nil
			})
			if called {
				t.Error("fn was called for an empty candidate range")
			}
			if idx != -1 || v != "" {
				t.Errorf("got (%d, %q), want (-1, \"\")", idx, v)
			}
			var ese *EmptySearchError
			if !errors.As(err, &ese) {
				t.Fatalf("err = %v, want *EmptySearchError", err)
			}
			if ese.N != tc.n {
				t.Errorf("EmptySearchError.N = %d, want %d", ese.N, tc.n)
			}
		})
	}
}

// TestSearchMinEmptyCancelled: cancellation still dominates the empty
// range, matching every other Ctx path in the package.
func TestSearchMinEmptyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	idx, _, err := SearchMinCtx(ctx, 4, 0, func(i int) (int, error) { return 0, nil })
	if idx != -1 || !errors.Is(err, context.Canceled) {
		t.Errorf("got (%d, %v), want (-1, context.Canceled)", idx, err)
	}
}
