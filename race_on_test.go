//go:build race

package hls_test

// raceEnabled reports whether the test binary was built with -race;
// timing bounds scale up under the instrumentation's ~10x slowdown.
const raceEnabled = true
