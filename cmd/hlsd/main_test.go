package main

import (
	"bytes"
	"context"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// startDaemon runs the tool body on an ephemeral port and returns the
// base URL, a cancel func (the SIGINT stand-in), and the completion
// channel carrying run's error.
func startDaemon(t *testing.T, args ...string) (string, context.CancelFunc, chan error, *syncBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out)
	}()

	// The listen line is printed before serving starts; poll for it.
	re := regexp.MustCompile(`listening on (\S+)`)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], cancel, done, out
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v (output %q)", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestDaemonServesAndDrains(t *testing.T) {
	url, cancel, done, out := startDaemon(t)

	// The daemon answers: synthesize a small behavioral design.
	body := `{"source": "design d\ninput a, b\ny = a + b\n", "config": {"cs": 2}}`
	resp, err := http.Post(url+"/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize status %d", resp.StatusCode)
	}

	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}

	// SIGINT stand-in: cancel drains and run returns nil.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("output %q does not report the drain", out.String())
	}
}

func TestDaemonFlagErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-addr"}, &bytes.Buffer{}); err == nil {
		t.Error("dangling flag accepted")
	}
	if err := run(context.Background(), []string{"positional"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "usage") {
		t.Errorf("positional arg: err = %v, want usage error", err)
	}
}

func TestDaemonQueueKnobs(t *testing.T) {
	url, cancel, done, _ := startDaemon(t, "-workers", "1", "-queue", "1", "-cache-entries", "4")
	defer func() { cancel(); <-done }()

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d: %s", resp.StatusCode, buf.String())
	}
	if !strings.Contains(buf.String(), `"requests"`) {
		t.Errorf("metrics body %q lacks request counters", buf.String())
	}
}
