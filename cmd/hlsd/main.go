// Command hlsd is the synthesis daemon: it serves the internal/serve
// HTTP/JSON API (POST /synthesize, /sweep, /certify; GET /metrics) with
// a content-addressed result cache, so a fleet of clients can share one
// warm synthesis service.
//
// Usage:
//
//	hlsd                             # listen on :8821, default knobs
//	hlsd -addr 127.0.0.1:0           # ephemeral port (printed on start)
//	hlsd -workers 8 -queue 128       # concurrency and admission bounds
//	hlsd -cache-entries 4096 -cache-bytes 256000000
//
// The daemon drains on SIGINT/SIGTERM: the listener closes, queued
// requests fail fast with 503, and in-flight synthesis is cancelled
// through its context.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/cli"
	"repro/internal/serve"
)

func main() { cli.Main("hlsd", run) }

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hlsd", flag.ContinueOnError)
	addr := fs.String("addr", ":8821", "listen address (host:port; port 0 = ephemeral)")
	workers := fs.Int("workers", 0, "concurrent synthesis bound (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "waiting requests admitted before 503 (0 = default 64)")
	cacheEntries := fs.Int("cache-entries", 0, "result cache entry cap (0 = default 1024, negative = unbounded)")
	cacheBytes := fs.Int64("cache-bytes", 0, "result cache byte cap (0 = default 64 MiB, negative = unbounded)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request synthesis deadline (0 = default 60s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: hlsd [flags]")
	}

	s := serve.New(serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
		DefaultTimeout: *reqTimeout,
	})
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "hlsd: listening on %s\n", ln.Addr())

	srv := &http.Server{
		Handler: s.Handler(),
		// Requests observe daemon shutdown through their own contexts.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		// SIGINT/SIGTERM: cancel queued and in-flight work first (the
		// <100ms drain path), then close the listener and let in-flight
		// responses finish writing.
		s.Close()
		//hls:ctxok the live ctx is already done here; the shutdown grace period needs a fresh deadline
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		fmt.Fprintln(out, "hlsd: drained")
		return nil
	}
}
