// Command dfg inspects and converts data-flow-graph designs: it parses a
// behavioral .hls source (or a .json graph file), prints statistics, and
// converts between formats.
//
// Usage:
//
//	dfg -stats design.hls           # op counts, critical path, inputs
//	dfg -json design.hls            # behavioral source -> JSON graph
//	dfg -dot design.hls             # Graphviz rendering
//	dfg -sched-dot -cs 4 design.hls # scheduled rendering (MFS at cs)
//	dfg -eval 'a=1,b=2' design.hls  # evaluate on concrete inputs
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/behav"
	"repro/internal/cli"
	"repro/internal/dfg"
	"repro/internal/dfgio"
	"repro/internal/mfs"
)

func main() { cli.Main("dfg", run) }

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dfg", flag.ContinueOnError)
	stats := fs.Bool("stats", false, "print design statistics")
	toJSON := fs.Bool("json", false, "emit the graph as JSON")
	toDOT := fs.Bool("dot", false, "emit the graph as Graphviz dot")
	schedDOT := fs.Bool("sched-dot", false, "schedule with MFS and emit a step-clustered dot")
	cs := fs.Int("cs", 0, "time constraint for -sched-dot")
	evalStr := fs.String("eval", "", "evaluate with inputs 'a=1,b=2'")
	timeout := cli.Timeout(fs)
	prof := cli.Profile(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dfg [flags] design.{hls,json}")
	}
	g, consts, err := load(fs.Arg(0))
	if err != nil {
		return err
	}

	did := false
	if *stats {
		printStats(out, g)
		did = true
	}
	if *toJSON {
		data, err := dfgio.EncodeGraph(g)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		did = true
	}
	if *toDOT {
		fmt.Fprint(out, dfgio.DOT(g))
		did = true
	}
	if *schedDOT {
		if *cs < 1 {
			return fmt.Errorf("-sched-dot needs -cs")
		}
		s, err := mfs.ScheduleCtx(ctx, g, mfs.Options{CS: *cs})
		if err != nil {
			return err
		}
		fmt.Fprint(out, dfgio.ScheduleDOT(s))
		did = true
	}
	if *evalStr != "" {
		in, err := parseInputs(*evalStr)
		if err != nil {
			return err
		}
		for k, v := range consts {
			if _, ok := in[k]; !ok {
				in[k] = v
			}
		}
		vals, err := g.Eval(in)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(vals))
		for k := range vals {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(out, "%s = %d\n", k, vals[k])
		}
		did = true
	}
	if !did {
		printStats(out, g)
	}
	return nil
}

// load reads a design from behavioral source (.hls) or a JSON graph.
func load(path string) (*dfg.Graph, map[string]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(path, ".json") {
		g, err := dfgio.DecodeGraph(data)
		return g, nil, err
	}
	return behav.BuildSource(string(data))
}

func printStats(out io.Writer, g *dfg.Graph) {
	counts := make(map[string]int)
	multicycle, tagged, loops := 0, 0, 0
	for _, n := range g.Nodes() {
		if n.IsLoop() {
			loops++
		} else {
			counts[n.Op.String()]++
		}
		if n.Cycles > 1 {
			multicycle++
		}
		if len(n.Excl) > 0 {
			tagged++
		}
	}
	fmt.Fprintf(out, "design %s: %d operations, %d inputs, %d outputs\n",
		g.Name, g.Len(), len(g.Inputs()), len(g.Outputs()))
	fmt.Fprintf(out, "critical path: %d control steps\n", g.CriticalPathCycles())
	syms := make([]string, 0, len(counts))
	for s := range counts {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	for _, s := range syms {
		fmt.Fprintf(out, "  %-4s %d\n", s, counts[s])
	}
	if multicycle > 0 {
		fmt.Fprintf(out, "multicycle operations: %d\n", multicycle)
	}
	if tagged > 0 {
		fmt.Fprintf(out, "conditional operations: %d\n", tagged)
	}
	if loops > 0 {
		fmt.Fprintf(out, "folded loops: %d\n", loops)
	}
}

func parseInputs(s string) (map[string]int64, error) {
	out := make(map[string]int64)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad input %q (want name=value)", part)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(kv[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q", part)
		}
		out[strings.TrimSpace(kv[0])] = v
	}
	return out, nil
}
