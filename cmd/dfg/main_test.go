package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const design = `
design tool
input a, b
s = a + b
m = s * b @2
if s < 9 {
    t1 = s + 1
} else {
    t2 = s - 1
}
`

func write(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStats(t *testing.T) {
	path := write(t, "d.hls", design)
	var out strings.Builder
	if err := run(context.Background(), []string{"-stats", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"design tool", "critical path: 3", "multicycle operations: 1", "conditional operations: 2"} {
		if !strings.Contains(got, want) {
			t.Errorf("stats missing %q:\n%s", want, got)
		}
	}
}

func TestDefaultIsStats(t *testing.T) {
	path := write(t, "d.hls", design)
	var out strings.Builder
	if err := run(context.Background(), []string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "design tool") {
		t.Error("default run did not print stats")
	}
}

func TestJSONRoundTripThroughTool(t *testing.T) {
	path := write(t, "d.hls", design)
	var out strings.Builder
	if err := run(context.Background(), []string{"-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	jsonPath := write(t, "d.json", out.String())
	var out2 strings.Builder
	if err := run(context.Background(), []string{"-stats", jsonPath}, &out2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "critical path: 3") {
		t.Errorf("JSON round trip lost structure:\n%s", out2.String())
	}
}

func TestDOT(t *testing.T) {
	path := write(t, "d.hls", design)
	var out strings.Builder
	if err := run(context.Background(), []string{"-dot", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"digraph", `"s" -> "m"`, "[2 cyc]", "{c1.b0}"} {
		if !strings.Contains(got, want) {
			t.Errorf("dot missing %q:\n%s", want, got)
		}
	}
}

func TestSchedDOT(t *testing.T) {
	path := write(t, "d.hls", design)
	var out strings.Builder
	if err := run(context.Background(), []string{"-sched-dot", "-cs", "4", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "cluster_t1") || !strings.Contains(got, "step 1") {
		t.Errorf("sched dot missing clusters:\n%s", got)
	}
	if err := run(context.Background(), []string{"-sched-dot", path}, &out); err == nil {
		t.Error("-sched-dot without -cs accepted")
	}
}

func TestEval(t *testing.T) {
	path := write(t, "d.hls", design)
	var out strings.Builder
	if err := run(context.Background(), []string{"-eval", "a=2, b=3", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "s = 5") || !strings.Contains(got, "m = 15") {
		t.Errorf("eval output:\n%s", got)
	}
	if err := run(context.Background(), []string{"-eval", "garbage", path}, &out); err == nil {
		t.Error("bad eval inputs accepted")
	}
	if err := run(context.Background(), []string{"-eval", "a=x", path}, &out); err == nil {
		t.Error("non-numeric eval input accepted")
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{}, &out); err == nil {
		t.Error("no file accepted")
	}
	if err := run(context.Background(), []string{"/nope.hls"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	bad := write(t, "bad.json", "{")
	if err := run(context.Background(), []string{bad}, &out); err == nil {
		t.Error("bad json accepted")
	}
}
