// Command hlsvet statically enforces the engine's source-level
// invariants: determinism (maporder, noclock), cancellation discipline
// (ctxflow), panic-recovery boundaries (guardboundary), the
// zero-allocation hot paths (noalloc), the read-only graph/library
// sharing contract of the parallel engine (sharedro, via
// interprocedural mutation summaries), and error discipline in the
// determinism-critical packages (errflow). See internal/vet for the
// invariant catalog and DESIGN.md §13 for why each holds.
//
// Two modes:
//
//	hlsvet ./...                  # standalone, over go list patterns
//	hlsvet -run maporder ./...    # one analyzer only
//	hlsvet -json ./...            # findings as typed-diagnostic JSON
//	go vet -vettool=$(which hlsvet) ./...   # as a go vet tool
//
// In vettool mode cmd/go drives one package unit per invocation through
// the vet.cfg protocol; standalone mode loads the module itself via
// `go list -export`. Both report the same diagnostics with stable HV
// codes and exit nonzero when any are found.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/vet"
)

//hls:guardok the pre-cli.Main calls only speak the go vet driver protocol (-V probe, vet.cfg unit) and must control os.Exit codes themselves; the real synthesis path still routes through cli.Main
func main() {
	// The two go vet driver entry points must bypass normal flag
	// handling: the -V=full probe, and the trailing vet.cfg unit run.
	if len(os.Args) == 2 && (os.Args[1] == "-V=full" || os.Args[1] == "-V") {
		vet.PrintVersion(os.Stdout)
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		vet.PrintFlags(os.Stdout)
		return
	}
	if len(os.Args) >= 2 && strings.HasSuffix(os.Args[len(os.Args)-1], ".cfg") {
		vet.UnitcheckerMain(os.Args[1:])
	}
	cli.Main("hlsvet", run)
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hlsvet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON (the hlslint diagnostic schema)")
	runOnly := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("analyzers", false, "list registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, a := range vet.Analyzers() {
			fmt.Fprintf(out, "%-14s %s (%s)\n", a.Name, a.Doc, strings.Join(a.Codes, ", "))
		}
		return nil
	}
	var names []string
	if *runOnly != "" {
		names = strings.Split(*runOnly, ",")
	}
	analyzers, err := vet.Select(names)
	if err != nil {
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ds, err := vet.Check(ctx, ".", patterns, analyzers)
	if err != nil {
		return err
	}
	if *jsonOut {
		vet.PrintJSON(out, ds)
	} else {
		for _, d := range ds {
			fmt.Fprintln(out, d)
		}
	}
	if len(ds) > 0 {
		return fmt.Errorf("%d invariant violation(s)", len(ds))
	}
	return nil
}
