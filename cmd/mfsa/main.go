// Command mfsa synthesizes a behavioral description with Move Frame
// Scheduling-Allocation: it prints the schedule, the allocated RTL
// structure with its Table 2-style cost breakdown, and optionally the
// FSM controller and a structural netlist.
//
// Usage:
//
//	mfsa -cs 4 design.hls               # style-1 synthesis
//	mfsa -cs 4 -style 2 design.hls      # self-testable style 2
//	mfsa -cs 4 -netlist out.v design.hls
//	mfsa -cs 4 -ctrl design.hls         # print the controller
//	mfsa -cs 4 -check 5 design.hls      # verify on 5 random vectors
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/sim"
)

func main() { cli.Main("mfsa", run) }

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mfsa", flag.ContinueOnError)
	cs := fs.Int("cs", 0, "time constraint in control steps (required)")
	style := fs.Int("style", 1, "datapath style: 1 unrestricted, 2 no ALU self-loops")
	clock := fs.Float64("clock", 0, "control-step clock period in ns (enables chaining)")
	latency := fs.Int("latency", 0, "functional-pipelining initiation interval")
	netlist := fs.String("netlist", "", "write a structural netlist to this file")
	printCtrl := fs.Bool("ctrl", false, "print the FSM controller")
	report := fs.Bool("report", false, "print the full synthesis report instead of the summary")
	check := fs.Int("check", 3, "random vectors for the post-synthesis self-check (0 disables)")
	regInputs := fs.Bool("reg-inputs", false, "allocate registers for primary inputs")
	optimize := fs.Bool("optimize", false, "run frontend passes (fold, CSE, DCE) before synthesis")
	vcdPath := fs.String("vcd", "", "simulate one random vector and write a VCD waveform to this file")
	tbPath := fs.String("tb", "", "write a self-checking testbench (3 random vectors) to this file")
	timeout := cli.Timeout(fs)
	prof := cli.Profile(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mfsa [flags] design.hls")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	d, err := core.SynthesizeSourceCtx(ctx, string(src), core.Config{
		CS: *cs, Style: *style, ClockNs: *clock, Latency: *latency,
		RegisterInputs: *regInputs, Optimize: *optimize,
	})
	if err != nil {
		return err
	}
	if *check > 0 {
		if err := d.SelfCheck(*check); err != nil {
			return err
		}
		fmt.Fprintf(out, "self-check passed on %d random vectors\n", *check)
	}
	if *report {
		rep, err := d.Report()
		if err != nil {
			return err
		}
		fmt.Fprint(out, rep)
	} else {
		fmt.Fprint(out, d.Schedule.String())
		fmt.Fprint(out, d.Schedule.Gantt())
		c := d.Cost
		fmt.Fprintf(out, "RTL structure (style %d):\n", *style)
		fmt.Fprintf(out, "  ALUs:        %s\n", d.Datapath.ALUSummary())
		fmt.Fprintf(out, "  total cost:  %.0f um^2 (ALU %.0f, MUX %.0f, REG %.0f)\n",
			c.Total, c.ALUArea, c.MuxArea, c.RegArea)
		fmt.Fprintf(out, "  registers:   %d\n", c.NumRegs)
		fmt.Fprintf(out, "  multiplexers: %d with %d inputs total\n", c.NumMux, c.NumMuxInputs)
	}
	if *printCtrl {
		fmt.Fprint(out, d.Controller.String())
	}
	if *netlist != "" {
		v, err := d.Netlist()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*netlist, []byte(v), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "netlist written to %s\n", *netlist)
	}
	if *vcdPath != "" {
		in := sim.RandomInputs(d.Graph, 1)
		for k, v := range d.Consts {
			in[k] = v
		}
		var buf bytes.Buffer
		if err := sim.TraceVCD(d.Schedule, in, &buf); err != nil {
			return err
		}
		if err := os.WriteFile(*vcdPath, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "VCD waveform written to %s\n", *vcdPath)
	}
	if *tbPath != "" {
		var vectors []map[string]int64
		for seed := int64(1); seed <= 3; seed++ {
			in := sim.RandomInputs(d.Graph, seed)
			for k, v := range d.Consts {
				in[k] = v
			}
			vectors = append(vectors, in)
		}
		tb, err := emit.Testbench(d.Graph, d.Schedule, vectors)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*tbPath, []byte(tb), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "testbench written to %s\n", *tbPath)
	}
	return nil
}
