package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testDesign = `
design cli
input a, b
s = a + b
p = s * b
q = p - a
`

func writeDesign(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "design.hls")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBasic(t *testing.T) {
	path := writeDesign(t, testDesign)
	var out strings.Builder
	if err := run(context.Background(), []string{"-cs", "3", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"self-check passed", "RTL structure (style 1)", "ALUs:",
		"total cost:", "registers:", "unit", // Gantt header
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunStyle2AndController(t *testing.T) {
	path := writeDesign(t, testDesign)
	var out strings.Builder
	if err := run(context.Background(), []string{"-cs", "3", "-style", "2", "-ctrl", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "style 2") || !strings.Contains(got, "controller cli") {
		t.Errorf("output:\n%s", got)
	}
}

func TestRunNetlist(t *testing.T) {
	path := writeDesign(t, testDesign)
	nl := filepath.Join(t.TempDir(), "out.v")
	var out strings.Builder
	if err := run(context.Background(), []string{"-cs", "3", "-netlist", nl, path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(nl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "module cli") {
		t.Errorf("netlist:\n%s", data)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeDesign(t, testDesign)
	var out strings.Builder
	if err := run(context.Background(), []string{path}, &out); err == nil {
		t.Error("missing -cs accepted")
	}
	if err := run(context.Background(), []string{"-cs", "3"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(context.Background(), []string{"-cs", "1", path}, &out); err == nil {
		t.Error("infeasible cs accepted")
	}
}

func TestRunReport(t *testing.T) {
	path := writeDesign(t, testDesign)
	var out strings.Builder
	if err := run(context.Background(), []string{"-cs", "3", "-report", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"synthesis report", "utilization", "bus alternative", "FSM states"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunVCDAndTestbench(t *testing.T) {
	path := writeDesign(t, testDesign)
	dir := t.TempDir()
	vcd := filepath.Join(dir, "wave.vcd")
	tb := filepath.Join(dir, "tb.v")
	var out strings.Builder
	if err := run(context.Background(), []string{"-cs", "3", "-vcd", vcd, "-tb", tb, path}, &out); err != nil {
		t.Fatal(err)
	}
	wave, err := os.ReadFile(vcd)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(wave), "$enddefinitions") {
		t.Error("VCD malformed")
	}
	bench, err := os.ReadFile(tb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(bench), "module cli_tb") {
		t.Error("testbench malformed")
	}
}
