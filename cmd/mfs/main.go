// Command mfs schedules a behavioral description with Move Frame
// Scheduling and prints the schedule and functional-unit usage.
//
// Usage:
//
//	mfs -cs 4 design.hls                 # time-constrained
//	mfs -limits '*=1,+=1' design.hls     # resource-constrained
//	mfs -cs 4 -clock 100 design.hls      # with chaining (100ns step)
//	mfs -cs 8 -latency 4 design.hls      # functional pipelining
//	mfs -cs 9 -pipelined '*' design.hls  # structural pipelining
//
// The input language is documented in the repository README; see
// examples/ for complete designs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/behav"
	"repro/internal/cli"
	"repro/internal/mfs"
)

func main() { cli.Main("mfs", run) }

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mfs", flag.ContinueOnError)
	cs := fs.Int("cs", 0, "time constraint in control steps (0 = resource-constrained)")
	limitsFlag := fs.String("limits", "", "per-type FU limits, e.g. '*=1,+=2'")
	clock := fs.Float64("clock", 0, "control-step clock period in ns (enables chaining)")
	latency := fs.Int("latency", 0, "functional-pipelining initiation interval")
	pipelined := fs.String("pipelined", "", "comma-separated op symbols on pipelined units")
	timeout := cli.Timeout(fs)
	prof := cli.Profile(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mfs [flags] design.hls")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	g, _, err := behav.BuildSource(string(src))
	if err != nil {
		return err
	}
	limits, err := parseLimits(*limitsFlag)
	if err != nil {
		return err
	}
	opt := mfs.Options{
		CS: *cs, Limits: limits, ClockNs: *clock, Latency: *latency,
		PipelinedTypes: make(map[string]bool),
	}
	for _, sym := range splitList(*pipelined) {
		opt.PipelinedTypes[sym] = true
	}
	design, err := mfs.ScheduleLoopsCtx(ctx, g, opt)
	if err != nil {
		return err
	}
	s := design.Schedule
	fmt.Fprint(out, s.String())
	fmt.Fprint(out, s.Gantt())
	fmt.Fprintln(out, "functional units:")
	inst := s.InstancesPerType()
	typs := make([]string, 0, len(inst))
	for typ := range inst {
		typs = append(typs, typ)
	}
	sort.Strings(typs)
	for _, typ := range typs {
		fmt.Fprintf(out, "  %-8s %d\n", typ, inst[typ])
	}
	for id, inner := range design.Inner {
		fmt.Fprintf(out, "folded loop %q (local schedule):\n%s", g.Node(id).Name, inner.Schedule.String())
	}
	return nil
}

func parseLimits(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range splitList(s) {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad limit %q (want sym=count)", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad limit count %q", kv[1])
		}
		out[kv[0]] = n
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
