package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDesign(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "design.hls")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testDesign = `
design cli
input a, b
s = a + b
p = s * b
q = p - a
`

func TestRunTimeConstrained(t *testing.T) {
	path := writeDesign(t, testDesign)
	var out strings.Builder
	if err := run(context.Background(), []string{"-cs", "3", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"schedule cli cs=3", "functional units:", "*", "+"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunResourceConstrained(t *testing.T) {
	path := writeDesign(t, testDesign)
	var out strings.Builder
	if err := run(context.Background(), []string{"-limits", "+=1,*=1,-=1", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cs=3") {
		t.Errorf("resource-constrained output:\n%s", out.String())
	}
}

func TestRunWithLoop(t *testing.T) {
	path := writeDesign(t, `
design l
input x
loop acc cycles 2 binds v = x yields r {
    r = v + 1
}
out = acc * x
`)
	var out strings.Builder
	if err := run(context.Background(), []string{"-cs", "4", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "folded loop") {
		t.Errorf("loop schedule not printed:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeDesign(t, testDesign)
	var out strings.Builder
	if err := run(context.Background(), []string{}, &out); err == nil {
		t.Error("no file accepted")
	}
	if err := run(context.Background(), []string{"-cs", "3", "/nonexistent.hls"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(context.Background(), []string{"-cs", "1", path}, &out); err == nil {
		t.Error("infeasible cs accepted")
	}
	if err := run(context.Background(), []string{"-limits", "broken", path}, &out); err == nil {
		t.Error("bad limits accepted")
	}
	if err := run(context.Background(), []string{"-limits", "+=0", path}, &out); err == nil {
		t.Error("zero limit accepted")
	}
	bad := writeDesign(t, "nonsense")
	if err := run(context.Background(), []string{"-cs", "3", bad}, &out); err == nil {
		t.Error("bad source accepted")
	}
}

func TestParseLimits(t *testing.T) {
	m, err := parseLimits("*=1, +=2")
	if err != nil || m["*"] != 1 || m["+"] != 2 {
		t.Errorf("parseLimits = %v, %v", m, err)
	}
	if m, err := parseLimits(""); err != nil || m != nil {
		t.Errorf("empty limits = %v, %v", m, err)
	}
}
