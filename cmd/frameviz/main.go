// Command frameviz renders the paper's placement-grid figures: the
// present/next position walk of Figure 1, the PF/RF/FF/MF frame
// construction of Figure 2, or the frames of any operation of a
// user-supplied design at its moment of placement.
//
// Usage:
//
//	frameviz -fig 1
//	frameviz -fig 2
//	frameviz -cs 4 -node m4 design.hls
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/behav"
	"repro/internal/cli"
	"repro/internal/dfg"
	"repro/internal/experiments"
	"repro/internal/mfs"
)

func main() { cli.Main("frameviz", run) }

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("frameviz", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "render the paper's figure 1 or 2")
	cs := fs.Int("cs", 0, "time constraint for -node mode")
	node := fs.String("node", "", "signal whose placement frames to render")
	timeout := cli.Timeout(fs)
	prof := cli.Profile(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return err
	}

	switch {
	case *fig == 1:
		fmt.Fprintln(out, experiments.Figure1())
	case *fig == 2:
		f, err := experiments.Figure2()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, f)
	case *node != "":
		if fs.NArg() != 1 || *cs < 1 {
			return fmt.Errorf("usage: frameviz -cs N -node SIG design.hls")
		}
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		g, _, err := behav.BuildSource(string(src))
		if err != nil {
			return err
		}
		var target dfg.NodeID = -1
		for _, n := range g.Nodes() {
			if n.Name == *node {
				target = n.ID
			}
		}
		if target < 0 {
			return fmt.Errorf("no signal %q in design", *node)
		}
		in, err := mfs.FramesFor(g, mfs.Options{CS: *cs}, target)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, in.Render())
	default:
		return fmt.Errorf("pick -fig 1, -fig 2, or -node SIG with a design file")
	}
	return nil
}
