package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFigures(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-fig", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Oip") {
		t.Errorf("figure 1 output:\n%s", out.String())
	}
	out.Reset()
	if err := run(context.Background(), []string{"-fig", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MF = PF") {
		t.Errorf("figure 2 output:\n%s", out.String())
	}
}

func TestNodeMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.hls")
	src := `
design d
input a, b
s = a + b
p = s * b
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(context.Background(), []string{"-cs", "3", "-node", "p", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `operation "p"`) {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{}, &out); err == nil {
		t.Error("no mode accepted")
	}
	if err := run(context.Background(), []string{"-node", "x"}, &out); err == nil {
		t.Error("node mode without file/cs accepted")
	}
	path := filepath.Join(t.TempDir(), "d.hls")
	os.WriteFile(path, []byte("design d\ninput a\nx = a + a\n"), 0o644)
	if err := run(context.Background(), []string{"-cs", "2", "-node", "nosuch", path}, &out); err == nil {
		t.Error("unknown node accepted")
	}
}
