// Command hlsbench regenerates the paper's evaluation: Tables 1 and 2,
// the comparison and style-overhead studies, CPU times, the textual
// Figures 1 and 2, and the ablation tables. With -json it instead
// measures the machine-readable performance baseline (wall time per
// table, sequential vs parallel sweep throughput) and writes it to
// BENCH_sweep.json so later changes have a perf trajectory to regress
// against.
//
// Usage:
//
//	hlsbench                  # everything
//	hlsbench -table 1         # Table 1 only
//	hlsbench -table 2         # Table 2 only
//	hlsbench -table compare   # baseline comparison
//	hlsbench -table style     # style-2 overhead
//	hlsbench -table runtime   # CPU times
//	hlsbench -table ablation  # ablation studies
//	hlsbench -fig 1|2         # figures
//	hlsbench -json            # write perf baseline to BENCH_sweep.json
//	hlsbench -json -out p.json
//	hlsbench -json -out fresh.json -compare BENCH_sweep.json   # CI guard:
//	       exit non-zero if any wall time exceeds 3x the committed baseline
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() { cli.Main("hlsbench", run) }

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hlsbench", flag.ContinueOnError)
	table := fs.String("table", "", "which table to print (1, 2, compare, style, runtime, ablation); empty = all")
	fig := fs.Int("fig", 0, "which figure to print (1 or 2); 0 = per -table selection")
	jsonOut := fs.Bool("json", false, "measure the perf baseline and write it as JSON to -out")
	outPath := fs.String("out", "BENCH_sweep.json", "output path for -json")
	compare := fs.String("compare", "", "with -json: fail if any fresh wall time exceeds this committed baseline by more than -tolerance")
	tolerance := fs.Float64("tolerance", 3, "with -compare: allowed slowdown factor per measurement")
	timeout := cli.Timeout(fs)
	prof := cli.Profile(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()

	if *jsonOut {
		return writeBaseline(ctx, out, *outPath, *compare, *tolerance)
	}
	if *compare != "" {
		return fmt.Errorf("-compare requires -json")
	}
	if *fig != 0 {
		return printFigure(out, *fig)
	}
	sections := map[string][]func(context.Context) (*report.Table, error){
		"1":            {experiments.Table1Ctx},
		"2":            {experiments.Table2Ctx},
		"compare":      {experiments.CompareCtx},
		"phases":       {experiments.PhasesCtx},
		"interconnect": {experiments.InterconnectCtx},
		"style":        {experiments.StyleOverheadCtx},
		"runtime":      {experiments.RuntimeCtx},
		"ablation":     {experiments.AblationLiapunovCtx, experiments.AblationWeightsCtx, experiments.AblationRedundantFrameCtx},
	}
	order := []string{"1", "2", "compare", "phases", "interconnect", "style", "runtime", "ablation"}
	if *table != "" {
		fns, ok := sections[*table]
		if !ok {
			return fmt.Errorf("unknown table %q", *table)
		}
		for _, fn := range fns {
			if err := printTable(ctx, out, fn); err != nil {
				return err
			}
		}
		return nil
	}
	for _, key := range order {
		for _, fn := range sections[key] {
			if err := printTable(ctx, out, fn); err != nil {
				return err
			}
		}
	}
	if err := printFigure(out, 1); err != nil {
		return err
	}
	return printFigure(out, 2)
}

func writeBaseline(ctx context.Context, out io.Writer, path, compare string, tolerance float64) error {
	p, err := experiments.MeasurePerfCtx(ctx)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: sweep %s cs %d..%d, %.1f ms sequential, %.1f ms parallel (%.2fx on %d procs, identical=%v)\n",
		path, p.Sweep.Graph, p.Sweep.CSLo, p.Sweep.CSHi,
		p.Sweep.SequentialMs, p.Sweep.ParallelMs, p.Sweep.Speedup,
		p.GOMAXPROCS, p.Sweep.Identical)
	if compare == "" {
		return nil
	}
	base, err := experiments.LoadPerfBaseline(compare)
	if err != nil {
		return err
	}
	regs := experiments.ComparePerf(base, p, tolerance)
	if len(regs) == 0 {
		fmt.Fprintf(out, "within %.0fx of %s on every measurement\n", tolerance, compare)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(out, "regression:", r)
	}
	return fmt.Errorf("%d measurement(s) regressed past %.0fx of %s", len(regs), tolerance, compare)
}

func printTable(ctx context.Context, out io.Writer, fn func(context.Context) (*report.Table, error)) error {
	t, err := fn(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, t.String())
	return nil
}

func printFigure(out io.Writer, n int) error {
	switch n {
	case 1:
		fmt.Fprintln(out, experiments.Figure1())
	case 2:
		f, err := experiments.Figure2()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, f)
	default:
		return fmt.Errorf("unknown figure %d", n)
	}
	return nil
}
