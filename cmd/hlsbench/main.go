// Command hlsbench regenerates the paper's evaluation: Tables 1 and 2,
// the comparison and style-overhead studies, CPU times, the textual
// Figures 1 and 2, and the ablation tables. With -json it instead
// measures the machine-readable performance baseline (wall time per
// table, sequential vs parallel sweep throughput) and writes it to
// BENCH_sweep.json so later changes have a perf trajectory to regress
// against.
//
// Usage:
//
//	hlsbench                  # everything
//	hlsbench -table 1         # Table 1 only
//	hlsbench -table 2         # Table 2 only
//	hlsbench -table compare   # baseline comparison
//	hlsbench -table style     # style-2 overhead
//	hlsbench -table runtime   # CPU times
//	hlsbench -table ablation  # ablation studies
//	hlsbench -fig 1|2         # figures
//	hlsbench -json            # write perf baseline to BENCH_sweep.json
//	hlsbench -json -out p.json
//	hlsbench -json -out fresh.json -compare BENCH_sweep.json   # CI guard:
//	       exit non-zero if any wall time exceeds 3x the committed baseline
//
// With -scale it instead runs the large-graph ladder (generated DFGs
// from 1k to 100k nodes plus the incremental re-synthesis points),
// prints the per-rung wall time, ns/node, and allocation columns, and
// writes the snapshot to BENCH_scale.json:
//
//	hlsbench -scale                       # full ladder, 100k included
//	hlsbench -scale -maxnodes 10000       # committed-baseline subset
//	hlsbench -scale -out fresh.json -compare BENCH_scale.json
//
// -noindex disables the grid occupancy index for the whole run (every
// mode), falling back to the per-cell CanPlace walks. It is the A/B
// control for the word-scan placement walks; -json and -scale snapshots
// record it in a "noindex" field so the two populations cannot be
// conflated:
//
//	hlsbench -scale -maxnodes 1000 -noindex -out noindex.json
//
// With -serve it instead load-tests the hlsd daemon in-process: warm
// every distinct benchmark request, then replay them from a thousand
// concurrent clients, and write the hit-path latency percentiles, hit
// rate, and byte-identity verdict to BENCH_serve.json:
//
//	hlsbench -serve
//	hlsbench -serve -out fresh.json -compare BENCH_serve.json
//
// With -vet it instead times the full hlsvet analyzer suite over the
// module — sequential versus parallel, asserting byte-identical output
// — and writes the snapshot to BENCH_vet.json:
//
//	hlsbench -vet
//	hlsbench -vet -out fresh.json -compare BENCH_vet.json
//
// In every mode -compare prints the full per-metric delta table
// (baseline, fresh, slowdown factor) before the verdict, so a passing
// run still shows where the time is drifting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/report"
)

func main() { cli.Main("hlsbench", run) }

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hlsbench", flag.ContinueOnError)
	table := fs.String("table", "", "which table to print (1, 2, compare, style, runtime, ablation); empty = all")
	fig := fs.Int("fig", 0, "which figure to print (1 or 2); 0 = per -table selection")
	jsonOut := fs.Bool("json", false, "measure the perf baseline and write it as JSON to -out")
	scale := fs.Bool("scale", false, "measure the large-graph scale ladder and write it as JSON to -out")
	serveBench := fs.Bool("serve", false, "load-test the hlsd daemon in-process and write the snapshot as JSON to -out")
	vetBench := fs.Bool("vet", false, "time the hlsvet analyzer suite over the module and write the snapshot as JSON to -out")
	maxNodes := fs.Int("maxnodes", 0, "with -scale: skip ladder rungs larger than this many nodes (0 = full ladder)")
	outPath := fs.String("out", "", "output path for -json, -scale, or -serve (default BENCH_sweep.json, BENCH_scale.json, or BENCH_serve.json)")
	compare := fs.String("compare", "", "with -json, -scale, or -serve: print the per-metric delta table against this committed baseline and fail if any fresh wall time exceeds it by more than -tolerance")
	tolerance := fs.Float64("tolerance", 3, "with -compare: allowed slowdown factor per measurement")
	noIndex := fs.Bool("noindex", false, "disable the grid occupancy index (A/B baseline for the word-scan placement walks); recorded in the -json/-scale snapshot")
	timeout := cli.Timeout(fs)
	prof := cli.Profile(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	if *noIndex {
		grid.DisableIndex = true
		defer func() { grid.DisableIndex = false }()
	}

	modes := 0
	for _, on := range []bool{*jsonOut, *scale, *serveBench, *vetBench} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-json, -scale, -serve, and -vet are mutually exclusive")
	}
	if *vetBench {
		path := *outPath
		if path == "" {
			path = "BENCH_vet.json"
		}
		return writeVetBaseline(ctx, out, path, *compare, *tolerance)
	}
	if *serveBench {
		path := *outPath
		if path == "" {
			path = "BENCH_serve.json"
		}
		return writeServeBaseline(ctx, out, path, *compare, *tolerance)
	}
	if *scale {
		path := *outPath
		if path == "" {
			path = "BENCH_scale.json"
		}
		return writeScaleBaseline(ctx, out, path, *compare, *tolerance, *maxNodes)
	}
	if *jsonOut {
		path := *outPath
		if path == "" {
			path = "BENCH_sweep.json"
		}
		return writeBaseline(ctx, out, path, *compare, *tolerance)
	}
	if *compare != "" {
		return fmt.Errorf("-compare requires -json, -scale, -serve, or -vet")
	}
	if *fig != 0 {
		return printFigure(out, *fig)
	}
	sections := map[string][]func(context.Context) (*report.Table, error){
		"1":            {experiments.Table1Ctx},
		"2":            {experiments.Table2Ctx},
		"compare":      {experiments.CompareCtx},
		"phases":       {experiments.PhasesCtx},
		"interconnect": {experiments.InterconnectCtx},
		"style":        {experiments.StyleOverheadCtx},
		"runtime":      {experiments.RuntimeCtx},
		"ablation":     {experiments.AblationLiapunovCtx, experiments.AblationWeightsCtx, experiments.AblationRedundantFrameCtx},
	}
	order := []string{"1", "2", "compare", "phases", "interconnect", "style", "runtime", "ablation"}
	if *table != "" {
		fns, ok := sections[*table]
		if !ok {
			return fmt.Errorf("unknown table %q", *table)
		}
		for _, fn := range fns {
			if err := printTable(ctx, out, fn); err != nil {
				return err
			}
		}
		return nil
	}
	for _, key := range order {
		for _, fn := range sections[key] {
			if err := printTable(ctx, out, fn); err != nil {
				return err
			}
		}
	}
	if err := printFigure(out, 1); err != nil {
		return err
	}
	return printFigure(out, 2)
}

func writeBaseline(ctx context.Context, out io.Writer, path, compare string, tolerance float64) error {
	p, err := experiments.MeasurePerfCtx(ctx)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: sweep %s cs %d..%d, %.1f ms sequential, %.1f ms parallel (%.2fx on %d procs, identical=%v)\n",
		path, p.Sweep.Graph, p.Sweep.CSLo, p.Sweep.CSHi,
		p.Sweep.SequentialMs, p.Sweep.ParallelMs, p.Sweep.Speedup,
		p.GOMAXPROCS, p.Sweep.Identical)
	if compare == "" {
		return nil
	}
	base, err := experiments.LoadPerfBaseline(compare)
	if err != nil {
		return err
	}
	printDeltas(out, compare, experiments.PerfDeltas(base, p))
	return verdict(out, experiments.ComparePerf(base, p, tolerance), tolerance, compare)
}

func writeScaleBaseline(ctx context.Context, out io.Writer, path, compare string, tolerance float64, maxNodes int) error {
	b, err := experiments.MeasureScaleCtx(ctx, maxNodes)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "scale ladder (%s, %d procs):\n", b.GoVersion, b.GOMAXPROCS)
	fmt.Fprintf(out, "  %-10s %8s %5s %10s %9s %9s %8s\n",
		"rung", "nodes", "cs", "wall ms", "ns/node", "alloc MB", "heap MB")
	for _, r := range b.Rungs {
		fmt.Fprintf(out, "  %-10s %8d %5d %10.1f %9.0f %9.1f %8.1f\n",
			r.Name, r.Nodes, r.CS, r.WallMs, r.NsPerNode, r.AllocMB, r.HeapPeakMB)
	}
	if len(b.Incremental) > 0 {
		fmt.Fprintln(out, "incremental re-synthesis (one-node edit):")
		fmt.Fprintf(out, "  %-10s %8s %10s %10s %8s %10s\n",
			"point", "nodes", "fresh ms", "incr ms", "speedup", "identical")
		for _, p := range b.Incremental {
			fmt.Fprintf(out, "  %-10s %8d %10.1f %10.1f %7.1fx %10v\n",
				p.Name, p.Nodes, p.FreshMs, p.IncrementalMs, p.Speedup, p.Identical)
		}
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	if compare == "" {
		return nil
	}
	base, err := experiments.LoadScaleBaseline(compare)
	if err != nil {
		return err
	}
	printDeltas(out, compare, experiments.ScaleDeltas(base, b))
	return verdict(out, experiments.CompareScale(base, b, tolerance), tolerance, compare)
}

func writeVetBaseline(ctx context.Context, out io.Writer, path, compare string, tolerance float64) error {
	b, err := experiments.MeasureVetCtx(ctx, ".")
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d analyzers, %d findings, %.1f ms sequential, %.1f ms parallel (%.2fx on %d procs, identical=%v)\n",
		path, b.Analyzers, b.Findings, b.SequentialMs, b.ParallelMs, b.Speedup, b.GOMAXPROCS, b.Identical)
	if compare == "" {
		return nil
	}
	base, err := experiments.LoadVetBaseline(compare)
	if err != nil {
		return err
	}
	printDeltas(out, compare, experiments.VetDeltas(base, b))
	return verdict(out, experiments.CompareVet(base, b, tolerance), tolerance, compare)
}

func writeServeBaseline(ctx context.Context, out io.Writer, path, compare string, tolerance float64) error {
	b, err := experiments.MeasureServeCtx(ctx)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d clients x %d requests over %d designs\n",
		path, b.Clients, b.Requests/b.Clients, b.Designs)
	fmt.Fprintf(out, "  warm %.1f ms, replay %.1f ms (%.0f req/s), p50 %.2f ms, p99 %.2f ms\n",
		b.WarmMs, b.ReplayMs, b.ThroughputRPS, b.P50Ms, b.P99Ms)
	fmt.Fprintf(out, "  hit rate %.4f, byte-identical %v, sweep burst %d reqs in %d batches\n",
		b.HitRate, b.ByteIdentical, b.SweepBatchedReqs, b.SweepBatches)
	if compare == "" {
		return nil
	}
	base, err := experiments.LoadServeBaseline(compare)
	if err != nil {
		return err
	}
	printDeltas(out, compare, experiments.ServeDeltas(base, b))
	return verdict(out, experiments.CompareServe(base, b, tolerance), tolerance, compare)
}

// printDeltas renders the full per-metric comparison, pass or fail —
// a passing run should still show where the time is drifting.
func printDeltas(out io.Writer, compare string, deltas []experiments.Delta) {
	fmt.Fprintf(out, "delta vs %s:\n", compare)
	fmt.Fprintf(out, "  %-24s %12s %12s %8s\n", "metric", "baseline ms", "fresh ms", "factor")
	for _, d := range deltas {
		if d.OldMs <= 0 {
			fmt.Fprintf(out, "  %-24s %12s %12.2f %8s\n", d.Name, "-", d.NewMs, "-")
			continue
		}
		fmt.Fprintf(out, "  %-24s %12.2f %12.2f %7.2fx\n", d.Name, d.OldMs, d.NewMs, d.Factor())
	}
}

func verdict(out io.Writer, regs []experiments.PerfRegression, tolerance float64, compare string) error {
	if len(regs) == 0 {
		fmt.Fprintf(out, "within %.0fx of %s on every measurement\n", tolerance, compare)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(out, "regression:", r)
	}
	return fmt.Errorf("%d measurement(s) regressed past %.0fx of %s", len(regs), tolerance, compare)
}

func printTable(ctx context.Context, out io.Writer, fn func(context.Context) (*report.Table, error)) error {
	t, err := fn(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, t.String())
	return nil
}

func printFigure(out io.Writer, n int) error {
	switch n {
	case 1:
		fmt.Fprintln(out, experiments.Figure1())
	case 2:
		f, err := experiments.Figure2()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, f)
	default:
		return fmt.Errorf("unknown figure %d", n)
	}
	return nil
}
