package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestTables(t *testing.T) {
	cases := map[string]string{
		"1":       "Table 1",
		"2":       "Table 2",
		"compare": "Comparison",
		"style":   "overhead",
		"runtime": "CPU time",
	}
	for arg, want := range cases {
		var out strings.Builder
		if err := run(context.Background(), []string{"-table", arg}, &out); err != nil {
			t.Fatalf("-table %s: %v", arg, err)
		}
		if !strings.Contains(out.String(), want) {
			t.Errorf("-table %s output missing %q", arg, want)
		}
	}
}

func TestAblations(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-table", "ablation"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Liapunov function choice", "Liapunov terms", "redundant frame"} {
		if !strings.Contains(got, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestFigureFlag(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-fig", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Error("figure 1 missing")
	}
	if err := run(context.Background(), []string{"-fig", "3"}, &out); err == nil {
		t.Error("bad figure accepted")
	}
}

func TestUnknownTable(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-table", "bogus"}, &out); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestJSONBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	var out strings.Builder
	if err := run(context.Background(), []string{"-json", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("missing confirmation line: %q", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var p experiments.PerfBaseline
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if p.SchemaVersion != 1 {
		t.Errorf("schema version = %d", p.SchemaVersion)
	}
	if len(p.Tables) != 10 {
		t.Errorf("tables = %d, want 10", len(p.Tables))
	}
	if p.Sweep.Points < 2 || p.Sweep.SequentialMs <= 0 || p.Sweep.ParallelMs <= 0 {
		t.Errorf("implausible sweep timing: %+v", p.Sweep)
	}
	if !p.Sweep.Identical {
		t.Error("parallel sweep diverged from sequential")
	}
}

// TestScaleBaseline runs only the smallest ladder rung (-maxnodes caps
// the ladder), round-trips the snapshot, and checks that a second run
// compared against the first prints the full delta table — the contract
// being that -compare shows every metric, not just regressions.
func TestScaleBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scale.json")
	var out strings.Builder
	if err := run(context.Background(), []string{"-scale", "-maxnodes", "1000", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"ns/node", "alloc MB", "incremental re-synthesis", "wrote " + path} {
		if !strings.Contains(got, want) {
			t.Errorf("scale output missing %q in:\n%s", want, got)
		}
	}
	b, err := experiments.LoadScaleBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rungs) != 1 || b.Rungs[0].Name != "rand1k" {
		t.Fatalf("rungs = %+v, want just rand1k", b.Rungs)
	}
	if len(b.Incremental) != 1 || !b.Incremental[0].Identical {
		t.Fatalf("incremental = %+v", b.Incremental)
	}

	out.Reset()
	err = run(context.Background(), []string{"-scale", "-maxnodes", "1000",
		"-out", filepath.Join(t.TempDir(), "fresh.json"), "-compare", path, "-tolerance", "1000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got = out.String()
	for _, want := range []string{"delta vs " + path, "rung/rand1k", "inc1k/fresh", "inc1k/incremental", "within 1000x"} {
		if !strings.Contains(got, want) {
			t.Errorf("compare output missing %q in:\n%s", want, got)
		}
	}
}

func TestScaleCompareMissingBaseline(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-scale", "-maxnodes", "1000",
		"-out", filepath.Join(t.TempDir(), "fresh.json"), "-compare", "/nonexistent/BENCH_scale.json"}, &out)
	if err == nil || !strings.Contains(err.Error(), "hlsbench -scale") {
		t.Fatalf("want regenerate hint in error, got %v", err)
	}
}

func TestScaleJSONMutuallyExclusive(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-scale", "-json"}, &out); err == nil {
		t.Error("-scale -json accepted")
	}
	if err := run(context.Background(), []string{"-compare", "x.json"}, &out); err == nil {
		t.Error("bare -compare accepted")
	}
}
