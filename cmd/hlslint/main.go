// Command hlslint runs the cross-layer static verification framework
// (internal/lint) over synthesized designs: every artifact — data-flow
// graph, schedule with its recorded move-frame trajectory, Liapunov
// descent, RTL datapath, FSM controller, and emitted netlist — is
// checked by its analyzer, and findings are reported with stable HL
// diagnostic codes.
//
// Usage:
//
//	hlslint -cs 4 design.hls            # synthesize with MFSA, lint all artifacts
//	hlslint -cs 4 -json design.hls      # machine-readable findings
//	hlslint -benchmarks                 # audit every paper benchmark (MFS + MFSA)
//	hlslint -run dfg,frames -cs 4 f.hls # run selected analyzers only
//	hlslint -list                       # list registered analyzers
//
// Translation validation (the equiv pass) can be driven standalone to
// produce machine-readable proof certificates, optionally after seeding
// a known corruption to demonstrate the proof's soundness:
//
//	hlslint -equiv -cs 4 design.hls               # certify one design
//	hlslint -equiv -json -cs 4 design.hls         # JSON certificate
//	hlslint -equiv -benchmarks                    # certify all six paper benchmarks
//	hlslint -equiv -mutate swap-mux -cs 4 f.hls   # corrupt, then refute
//
// The exit status is non-zero when any error-severity diagnostic is
// found (or, with -equiv, when any certificate is refuted), so the
// command gates CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/benchmarks"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/lint"
)

func main() { cli.Main("hlslint", run) }

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hlslint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	runSel := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	bench := fs.Bool("benchmarks", false, "audit the six paper benchmarks instead of a source file")
	cs := fs.Int("cs", 0, "time constraint in control steps (required with a source file)")
	style := fs.Int("style", 1, "MFSA datapath style: 1 unrestricted, 2 no ALU self-loops")
	clock := fs.Float64("clock", 0, "control-step clock period in ns (enables chaining)")
	latency := fs.Int("latency", 0, "functional-pipelining initiation interval")
	optimize := fs.Bool("optimize", false, "run frontend passes before synthesis")
	equiv := fs.Bool("equiv", false, "run translation validation and emit proof certificates")
	mutate := fs.String("mutate", "", "with -equiv: apply a named artifact corruption first (soundness harness)")
	par := fs.Int("par", 0, "max parallel analyzers and synthesis jobs (0 = GOMAXPROCS)")
	timeout := cli.Timeout(fs)
	prof := cli.Profile(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(out, "%-10s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	var analyzers []string
	if *runSel != "" {
		analyzers = strings.Split(*runSel, ",")
	}
	if *mutate != "" && !*equiv {
		return fmt.Errorf("-mutate requires -equiv")
	}

	if *equiv {
		return runEquiv(ctx, fs, out, equivOptions{
			json: *jsonOut, bench: *bench, mutate: *mutate,
			cs: *cs, style: *style, clock: *clock, latency: *latency,
			optimize: *optimize, par: *par,
		})
	}

	var all diag.List
	switch {
	case *bench:
		if fs.NArg() != 0 {
			return fmt.Errorf("-benchmarks takes no file arguments")
		}
		ds, err := lintBenchmarks(ctx, analyzers, *par)
		if err != nil {
			return err
		}
		all = ds
	case fs.NArg() == 1:
		if *cs <= 0 {
			return fmt.Errorf("a time constraint is required: -cs N")
		}
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		d, err := core.SynthesizeSourceCtx(ctx, string(src), core.Config{
			CS: *cs, Style: *style, ClockNs: *clock, Latency: *latency,
			Optimize: *optimize, Parallelism: *par,
		})
		if err != nil {
			return err
		}
		all, err = d.LintCtx(ctx, analyzers...)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("usage: hlslint [flags] design.hls | hlslint -benchmarks")
	}

	all.Sort()
	if err := render(out, all, *jsonOut); err != nil {
		return err
	}
	if n := all.Count(diag.Error); n > 0 {
		return fmt.Errorf("%d error-severity diagnostic(s)", n)
	}
	return nil
}

// lintBenchmarks audits the six paper examples the way the evaluation
// drives them: MFS at every Table 1 time constraint (plus the
// structurally pipelined variant where the example has one) and MFSA in
// both datapath styles at the tightest constraint, each run linted over
// all its artifacts.
func lintBenchmarks(ctx context.Context, analyzers []string, par int) (diag.List, error) {
	var all diag.List
	audit := func(label string, d *core.Design, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		ds, err := d.LintCtx(ctx, analyzers...)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		for i := range ds {
			ds[i].Design = label
		}
		all = append(all, ds...)
		return nil
	}
	for _, ex := range benchmarks.All() {
		base := core.Config{ClockNs: ex.ClockNs, Parallelism: par}
		for _, t := range ex.TimeConstraints {
			cfg := base
			cfg.CS = t
			if ex.Latency != nil {
				cfg.Latency = ex.Latency(t)
			}
			d, err := core.ScheduleOnlyCtx(ctx, ex.Graph, cfg)
			if err := audit(fmt.Sprintf("%s/mfs/T=%d", ex.Name, t), d, err); err != nil {
				return nil, err
			}
			if len(ex.PipelinedOps) > 0 {
				cfg.PipelinedOps = ex.PipelinedOps
				d, err := core.ScheduleOnlyCtx(ctx, ex.Graph, cfg)
				if err := audit(fmt.Sprintf("%s/mfs-pipelined/T=%d", ex.Name, t), d, err); err != nil {
					return nil, err
				}
			}
		}
		for _, style := range []int{1, 2} {
			cfg := base
			cfg.CS = ex.TimeConstraints[0]
			cfg.Style = style
			d, err := core.SynthesizeCtx(ctx, ex.Graph, cfg)
			if err := audit(fmt.Sprintf("%s/mfsa/style%d", ex.Name, style), d, err); err != nil {
				return nil, err
			}
		}
	}
	return all, nil
}

// equivOptions carries the -equiv flag set.
type equivOptions struct {
	json, bench        bool
	mutate             string
	cs, style, latency int
	clock              float64
	optimize           bool
	par                int
}

// runEquiv drives translation validation: one certificate per design,
// text or JSON, non-zero exit when any certificate is refuted.
func runEquiv(ctx context.Context, fs *flag.FlagSet, out io.Writer, opt equivOptions) error {
	var certs []*lint.Certificate
	switch {
	case opt.bench:
		if fs.NArg() != 0 {
			return fmt.Errorf("-benchmarks takes no file arguments")
		}
		if opt.mutate != "" {
			return fmt.Errorf("-mutate works on a single source file, not -benchmarks")
		}
		cs, err := certifyBenchmarks(ctx, opt.par)
		if err != nil {
			return err
		}
		certs = cs
	case fs.NArg() == 1:
		if opt.cs <= 0 {
			return fmt.Errorf("a time constraint is required: -cs N")
		}
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		d, err := core.SynthesizeSourceCtx(ctx, string(src), core.Config{
			CS: opt.cs, Style: opt.style, ClockNs: opt.clock, Latency: opt.latency,
			Optimize: opt.optimize, Parallelism: opt.par,
		})
		if err != nil {
			return err
		}
		u := d.LintUnit()
		if opt.mutate != "" {
			if err := lint.ApplyMutation(u, opt.mutate); err != nil {
				return err
			}
		}
		cert, err := lint.Certify(ctx, u)
		if err != nil {
			return err
		}
		certs = []*lint.Certificate{cert}
	default:
		return fmt.Errorf("usage: hlslint -equiv [flags] design.hls | hlslint -equiv -benchmarks")
	}
	refuted := 0
	for _, c := range certs {
		if c.Status == "refuted" {
			refuted++
		}
	}
	if opt.json {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(certReport{Certificates: certs, Refuted: refuted}); err != nil {
			return err
		}
	} else {
		for _, c := range certs {
			fmt.Fprintf(out, "%s: %s (CS=%d)\n", c.Design, c.Status, c.CS)
			for _, p := range c.Outputs {
				fmt.Fprintf(out, "  output %-12s datapath=%s netlist=%s\n", p.Output, p.Datapath, p.Netlist)
			}
			if c.CrossCheck != "" {
				fmt.Fprintf(out, "  cross-check: %s\n", c.CrossCheck)
			}
			for _, d := range c.Diagnostics {
				fmt.Fprintf(out, "  %s\n", d.String())
				if cx := d.Counterexample; cx != nil {
					confirmed := "symbolic only"
					if cx.SimConfirmed {
						confirmed = "simulator-confirmed"
					}
					fmt.Fprintf(out, "    counterexample (%s): inputs=%v want=%d got=%d\n",
						confirmed, cx.Inputs, cx.Want, cx.Got)
					if cx.SimError != "" {
						fmt.Fprintf(out, "    simulator: %s\n", cx.SimError)
					}
				}
			}
		}
		fmt.Fprintf(out, "%d certificate(s): %d refuted\n", len(certs), refuted)
	}
	if refuted > 0 {
		return fmt.Errorf("%d refuted certificate(s)", refuted)
	}
	return nil
}

// certifyBenchmarks certifies every paper benchmark, synthesized with
// MFSA in both datapath styles at its tightest time constraint.
func certifyBenchmarks(ctx context.Context, par int) ([]*lint.Certificate, error) {
	var certs []*lint.Certificate
	for _, ex := range benchmarks.All() {
		for _, style := range []int{1, 2} {
			cfg := core.Config{
				CS: ex.TimeConstraints[0], ClockNs: ex.ClockNs,
				Style: style, Parallelism: par,
			}
			d, err := core.SynthesizeCtx(ctx, ex.Graph, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/style%d: %w", ex.Name, style, err)
			}
			u := d.LintUnit()
			u.Design = fmt.Sprintf("%s/mfsa/style%d", ex.Name, style)
			cert, err := lint.Certify(ctx, u)
			if err != nil {
				return nil, err
			}
			certs = append(certs, cert)
		}
	}
	return certs, nil
}

// certReport is the -equiv -json output shape.
type certReport struct {
	Certificates []*lint.Certificate `json:"certificates"`
	Refuted      int                 `json:"refuted"`
}

// jsonReport is the -json output shape.
type jsonReport struct {
	Diagnostics diag.List `json:"diagnostics"`
	Errors      int       `json:"errors"`
	Warnings    int       `json:"warnings"`
}

func render(out io.Writer, all diag.List, asJSON bool) error {
	errs := all.Count(diag.Error)
	warns := all.Count(diag.Warn) - errs
	if asJSON {
		rep := jsonReport{Diagnostics: all, Errors: errs, Warnings: warns}
		if rep.Diagnostics == nil {
			rep.Diagnostics = diag.List{}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	for _, d := range all {
		fmt.Fprintln(out, d.String())
	}
	fmt.Fprintf(out, "%d diagnostic(s): %d error(s), %d warning(s)\n", len(all), errs, warns)
	return nil
}
