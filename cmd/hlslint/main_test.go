package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGoldenJSON locks the -json output shape on two clean designs: the
// HAL differential-equation solver and the wave-filter kernel. A change
// to the diagnostic schema or to what the analyzers report on a clean
// synthesis run shows up as a golden diff.
func TestGoldenJSON(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"diffeq", []string{"-json", "-cs", "4", "testdata/diffeq.hls"}},
		{"wavefilter", []string{"-json", "-cs", "12", "testdata/wavefilter.hls"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(context.Background(), tc.args, &buf); err != nil {
				t.Fatalf("run(%v): %v\n%s", tc.args, err, buf.String())
			}
			golden := filepath.Join("testdata", tc.name+".golden.json")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s",
					golden, buf.String(), want)
			}
		})
	}
}

// TestGoldenEquivJSON locks the -equiv -json certificate shape: a clean
// certification of the differential-equation solver, and the refuted
// certificate produced after seeding a commuted-subtraction corruption
// into its netlist (the corrupted run must also exit non-zero).
func TestGoldenEquivJSON(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		refuted bool
	}{
		{"equiv_diffeq", []string{"-equiv", "-json", "-cs", "4", "testdata/diffeq.hls"}, false},
		{"equiv_diffeq_commute_sub", []string{"-equiv", "-json", "-cs", "4", "-mutate", "commute-sub", "testdata/diffeq.hls"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(context.Background(), tc.args, &buf)
			if tc.refuted {
				if err == nil || !strings.Contains(err.Error(), "refuted") {
					t.Fatalf("corrupted run: err = %v, want refuted certificate(s)", err)
				}
			} else if err != nil {
				t.Fatalf("run(%v): %v\n%s", tc.args, err, buf.String())
			}
			golden := filepath.Join("testdata", tc.name+".golden.json")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s",
					golden, buf.String(), want)
			}
		})
	}
}

// TestEquivBenchmarksCertify drives the -equiv -benchmarks path the CI
// equiv stage runs: every paper benchmark in both datapath styles must
// come back certified.
func TestEquivBenchmarksCertify(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-equiv", "-benchmarks"}, &buf); err != nil {
		t.Fatalf("-equiv -benchmarks: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "0 refuted") {
		t.Errorf("expected all benchmark certificates clean:\n%s", buf.String())
	}
}

func TestEquivFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-mutate", "swap-mux", "-cs", "4", "testdata/diffeq.hls"}, &buf); err == nil {
		t.Error("-mutate without -equiv did not error")
	}
	if err := run(context.Background(), []string{"-equiv", "testdata/diffeq.hls"}, &buf); err == nil {
		t.Error("-equiv without -cs did not error")
	}
	if err := run(context.Background(), []string{"-equiv", "-cs", "4", "-mutate", "bogus", "testdata/diffeq.hls"}, &buf); err == nil {
		t.Error("unknown mutation name did not error")
	}
}

func TestListAnalyzers(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alloc", "ctrl", "dfg", "frames", "liapunov", "netlist"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("-list output lacks analyzer %q:\n%s", name, buf.String())
		}
	}
}

func TestBenchmarksFlagClean(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-benchmarks"}, &buf); err != nil {
		t.Fatalf("-benchmarks: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "0 error(s)") {
		t.Errorf("expected a clean benchmark audit:\n%s", buf.String())
	}
}

func TestSelectedAnalyzersOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-run", "dfg,frames", "-cs", "4", "testdata/diffeq.hls"}, &buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if err := run(context.Background(), []string{"-run", "bogus", "-cs", "4", "testdata/diffeq.hls"}, &buf); err == nil {
		t.Fatal("expected an error for an unknown analyzer name")
	}
}

func TestErrorExitOnFindings(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "bad.hls")
	// Critical path 2 > CS 1 fails synthesis outright, before linting.
	if err := os.WriteFile(src, []byte("design bad\ninput a, b\nx = a + b\ny = x * b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-cs", "1", src}, &buf); err == nil {
		t.Fatal("expected an error for an infeasible constraint")
	}
}
