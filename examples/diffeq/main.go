// Diffeq: the HAL differential-equation benchmark (y” + 3xy' + 3y = 0),
// the workload the paper's introduction motivates. The example builds
// the data-flow graph programmatically, sweeps the time constraint with
// MFS to expose the time/hardware trade-off, compares against
// force-directed scheduling, and then runs MFSA to get a full RTL
// structure at each point.
package main

import (
	"fmt"
	"log"
	"sort"

	hls "repro"
)

func buildDiffeq() *hls.Graph {
	g := hls.NewGraph("diffeq")
	for _, in := range []string{"x", "y", "u", "dx", "a", "three"} {
		must(g.AddInput(in))
	}
	op := func(name string, k hls.OpKind, args ...string) {
		if _, err := g.AddOp(name, k, args...); err != nil {
			log.Fatal(err)
		}
	}
	op("m1", hls.Mul, "u", "dx")      // u·dx
	op("m2", hls.Mul, "three", "x")   // 3x
	op("m3", hls.Mul, "three", "y")   // 3y
	op("m4", hls.Mul, "m1", "m2")     // 3x·u·dx
	op("m5", hls.Mul, "m3", "dx")     // 3y·dx
	op("m6", hls.Mul, "u", "dx")      // u·dx for the y update
	op("sub1", hls.Sub, "u", "m4")    // u − 3x·u·dx
	op("sub2", hls.Sub, "sub1", "m5") // u' = u − 3x·u·dx − 3y·dx
	op("add1", hls.Add, "x", "dx")    // x' = x + dx
	op("add2", hls.Add, "y", "m6")    // y' = y + u·dx
	op("cmp", hls.Lt, "add1", "a")    // loop condition x' < a
	return g
}

func main() {
	fmt.Println("time/hardware trade-off for the HAL differential equation")
	fmt.Println("T   MFS FUs                    FDS FUs                    MFSA cost (um^2)")
	for _, cs := range []int{4, 5, 6, 8} {
		g := buildDiffeq()
		d, err := hls.ScheduleGraph(g, hls.Config{CS: cs})
		if err != nil {
			log.Fatal(err)
		}
		fds, err := hls.ForceDirected(buildDiffeq(), cs)
		if err != nil {
			log.Fatal(err)
		}
		syn, err := hls.Synthesize(buildDiffeq(), hls.Config{CS: cs})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3d %-26s %-26s %.0f\n", cs,
			fuString(d.Schedule.InstancesPerType()),
			fuString(fds.InstancesPerType()),
			syn.Cost.Total)
	}

	// Resource-constrained view: how fast can one multiplier go?
	g := buildDiffeq()
	d, err := hls.ScheduleGraph(g, hls.Config{
		Limits: map[string]int{"*": 1, "+": 1, "-": 1, "<": 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a single FU of each type, MFS needs %d control steps\n", d.Schedule.CS)

	if err := d.SelfCheck(5); err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedules verified against the behavioral reference")
}

func fuString(inst map[string]int) string {
	typs := make([]string, 0, len(inst))
	for typ := range inst {
		typs = append(typs, typ)
	}
	sort.Strings(typs)
	out := ""
	for i, typ := range typs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", typ, inst[typ])
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
