// Explore: design-space exploration over the time constraint — the
// trade-off study a user of the paper's tool runs before committing to a
// constraint. A 16-tap FIR filter written in the behavioral language is
// synthesized at every feasible T; the Pareto frontier of (control
// steps, total area) is printed with the chosen ALU sets.
package main

import (
	"fmt"
	"log"
	"strings"

	hls "repro"
)

func firSource() string {
	var b strings.Builder
	b.WriteString("design fir8\ninput ")
	for i := 0; i < 8; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "x%d, h%d", i, i)
	}
	b.WriteString("\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "p%d = x%d * h%d @2\n", i, i, i)
	}
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, "a%d = p%d + p%d\n", i, 2*i, 2*i+1)
	}
	b.WriteString("b0 = a0 + a1\nb1 = a2 + a3\ny = b0 + b1\n")
	return b.String()
}

func main() {
	g, _, err := hls.ParseBehavior(firSource())
	if err != nil {
		log.Fatal(err)
	}
	cp := g.CriticalPathCycles()
	fmt.Printf("8-tap FIR, 2-cycle multipliers, critical path %d steps\n\n", cp)

	points, err := hls.Sweep(g, hls.Config{}, cp, cp+8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("T    cost(um^2)  pareto  ALUs")
	for _, p := range points {
		mark := ""
		if p.Pareto {
			mark = "*"
		}
		fmt.Printf("%-4d %-11.0f %-7s %s\n", p.CS, p.Cost.Total, mark, p.ALUs)
	}

	// Pick the knee: the cheapest Pareto point.
	best := points[0]
	for _, p := range points {
		if p.Pareto && p.Cost.Total < best.Cost.Total {
			best = p
		}
	}
	fmt.Printf("\ncheapest frontier point: T=%d at %.0f um^2\n", best.CS, best.Cost.Total)

	d, err := hls.SynthesizeSource(firSource(), hls.Config{CS: best.CS})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.SelfCheck(5); err != nil {
		log.Fatal(err)
	}
	fmt.Println("chosen design verified against the behavioral reference")
}
