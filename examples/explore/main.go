// Explore: design-space exploration over the time constraint — the
// trade-off study a user of the paper's tool runs before committing to a
// constraint. Three FIR filter variants written in the behavioral
// language are swept concurrently with SweepGraphs (every design × every
// feasible T runs on the shared worker pool); the Pareto frontier of
// (control steps, total area) is printed per design with the chosen ALU
// sets, and the knee of the largest filter is synthesized and verified.
package main

import (
	"fmt"
	"log"
	"strings"

	hls "repro"
)

// firSource emits an n-tap FIR filter (n a power of two): n parallel
// 2-cycle multiplies followed by a log-depth adder reduction tree.
func firSource(taps int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "design fir%d\ninput ", taps)
	for i := 0; i < taps; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "x%d, h%d", i, i)
	}
	b.WriteString("\n")
	for i := 0; i < taps; i++ {
		fmt.Fprintf(&b, "t0_%d = x%d * h%d @2\n", i, i, i)
	}
	// Adder tree: level l sums pairs from level l-1 until one value is left.
	width := taps
	for level := 1; width > 1; level++ {
		for i := 0; i < width/2; i++ {
			fmt.Fprintf(&b, "t%d_%d = t%d_%d + t%d_%d\n", level, i, level-1, 2*i, level-1, 2*i+1)
		}
		width /= 2
	}
	return b.String()
}

func main() {
	taps := []int{4, 8, 16}
	graphs := make([]*hls.Graph, len(taps))
	// One shared cs window wide enough for every variant; SweepGraphs
	// clamps each design's lower bound to its own critical path.
	lo, hi := 1, 0
	for i, n := range taps {
		g, _, err := hls.ParseBehavior(firSource(n))
		if err != nil {
			log.Fatal(err)
		}
		graphs[i] = g
		if end := g.CriticalPathCycles() + 8; end > hi {
			hi = end
		}
	}

	// All designs × all constraints fan out on one worker pool.
	tables, err := hls.SweepGraphs(graphs, hls.Config{}, lo, hi)
	if err != nil {
		log.Fatal(err)
	}

	for i, points := range tables {
		fmt.Printf("%d-tap FIR, 2-cycle multipliers, critical path %d steps\n",
			taps[i], graphs[i].CriticalPathCycles())
		fmt.Println("T    cost(um^2)  pareto  ALUs")
		for _, p := range points {
			mark := ""
			if p.Pareto {
				mark = "*"
			}
			fmt.Printf("%-4d %-11.0f %-7s %s\n", p.CS, p.Cost.Total, mark, p.ALUs)
		}
		fmt.Println()
	}

	// Pick the knee of the largest filter: the cheapest Pareto point.
	points := tables[len(tables)-1]
	best := points[0]
	for _, p := range points {
		if p.Pareto && p.Cost.Total < best.Cost.Total {
			best = p
		}
	}
	fmt.Printf("cheapest fir%d frontier point: T=%d at %.0f um^2\n",
		taps[len(taps)-1], best.CS, best.Cost.Total)

	d, err := hls.SynthesizeSource(firSource(taps[len(taps)-1]), hls.Config{CS: best.CS})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.SelfCheck(5); err != nil {
		log.Fatal(err)
	}
	fmt.Println("chosen design verified against the behavioral reference")
}
