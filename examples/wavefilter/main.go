// Wavefilter: a fifth-order elliptic-wave-filter-style DSP kernel with
// two-cycle multipliers — the paper's flagship example (#6). The example
// shows the three pipelining-related capabilities on one workload:
// multicycle scheduling, structural pipelining (2-stage pipelined
// multipliers), and the resulting multiplier-count trend as the time
// constraint is relaxed from the critical path.
package main

import (
	"fmt"
	"log"

	hls "repro"
)

// buildFilter constructs a wave-filter kernel: an adder spine with
// constant multiplications tapping it (see internal/benchmarks for the
// full EWF stand-in; this example uses a compact variant).
func buildFilter() *hls.Graph {
	g := hls.NewGraph("wavefilter")
	for _, in := range []string{"in0", "in1", "c1", "c2", "c3", "k2", "k3", "k4", "k5", "k6", "k7", "k8", "k9"} {
		if err := g.AddInput(in); err != nil {
			log.Fatal(err)
		}
	}
	add := func(name, a, b string) {
		if _, err := g.AddOp(name, hls.Add, a, b); err != nil {
			log.Fatal(err)
		}
	}
	mul2 := func(name, a, c string) {
		id, err := g.AddOp(name, hls.Mul, a, c)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.SetCycles(id, 2); err != nil {
			log.Fatal(err)
		}
	}
	add("s1", "in0", "in1")
	mul2("m1", "s1", "c1")
	mul2("m2", "s1", "c2")
	mul2("m3", "s1", "c3")
	add("y", "m1", "m2")
	add("yy", "m3", "in0")
	add("z", "y", "yy")
	add("s2", "s1", "k2")
	add("s3", "s2", "k3")
	add("s4", "s3", "k4")
	add("s5", "s4", "k5")
	add("s6", "s5", "k6")
	add("s7", "s6", "z")
	add("s8", "s7", "k7")
	add("s9", "s8", "k8")
	add("out", "s9", "k9")
	return g
}

func main() {
	cp := buildFilter().CriticalPathCycles()
	fmt.Printf("critical path: %d control steps (with 2-cycle multipliers)\n\n", cp)

	fmt.Println("T    plain multipliers   pipelined multipliers")
	for _, cs := range []int{cp, cp + 2, cp + 4} {
		plain, err := hls.ScheduleGraph(buildFilter(), hls.Config{CS: cs})
		if err != nil {
			log.Fatal(err)
		}
		piped, err := hls.ScheduleGraph(buildFilter(), hls.Config{
			CS:           cs,
			PipelinedOps: []string{"*"},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-19d %d\n", cs,
			plain.Schedule.InstancesPerType()["*"],
			piped.Schedule.InstancesPerType()["*"])
		if err := plain.SelfCheck(3); err != nil {
			log.Fatal(err)
		}
	}

	// Full synthesis with pipelined multiplier cells from the library.
	d, err := hls.Synthesize(buildFilter(), hls.Config{CS: cp, PipelinedOps: []string{"*"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMFSA at T=%d with pipelined cells: %s, %.0f um^2\n",
		cp, d.Datapath.ALUSummary(), d.Cost.Total)
	if err := d.SelfCheck(3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified against the behavioral reference")
}
