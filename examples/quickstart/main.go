// Quickstart: synthesize a three-operation behavior end to end — parse,
// run MFSA, print the cost breakdown, simulate, and emit a netlist.
package main

import (
	"fmt"
	"log"

	hls "repro"
)

const design = `
design quick
input a, b, c
s = a + b     # adder
p = s * c     # multiplier
d = p - 7     # subtract a constant
`

func main() {
	d, err := hls.SynthesizeSource(design, hls.Config{CS: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== schedule ===")
	fmt.Print(d.Schedule.String())

	fmt.Println("=== RTL cost ===")
	fmt.Printf("ALUs:  %s\n", d.Datapath.ALUSummary())
	fmt.Printf("total: %.0f um^2  (%d registers, %d mux inputs)\n",
		d.Cost.Total, d.Cost.NumRegs, d.Cost.NumMuxInputs)

	fmt.Println("=== simulation ===")
	vals, err := d.Simulate(map[string]int64{"a": 2, "b": 3, "c": 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a=2 b=3 c=4  =>  s=%d p=%d d=%d\n", vals["s"], vals["p"], vals["d"])

	if err := d.SelfCheck(5); err != nil {
		log.Fatal(err)
	}
	fmt.Println("self-check passed on 5 random vectors")

	net, err := d.Netlist()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== netlist (first lines) ===")
	for i, line := range splitLines(net, 8) {
		fmt.Printf("%d| %s\n", i+1, line)
	}
}

func splitLines(s string, n int) []string {
	var out []string
	start := 0
	for i := 0; i < len(s) && len(out) < n; i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
