// Conditional: an ASIC-style kernel written in the behavioral language,
// exercising the §5 extensions end to end — if/else branches whose
// operations share functional units (mutual exclusion), a folded inner
// loop with its own local time constraint, chaining under a 100ns clock,
// and both MFSA design styles (style 2 = no ALU self-loops, the
// self-testable structure).
package main

import (
	"fmt"
	"log"

	hls "repro"
)

const design = `
design thresholder
input sample, coeff, limit, bias

# pre-scale and threshold test
scaled = sample * coeff
biased = scaled + bias

if biased < limit {
    lo_out = biased + 4        # cheap path
    lo_tag = lo_out & 255
} else {
    hi_out = biased - limit    # clamp path
    hi_tag = hi_out | 256
}
final = biased * 3
`

// loopDesign exercises §5.2's loop folding: the inner body is scheduled
// under its own 2-step local constraint and the outer graph treats it as
// one multicycle operation (MFS flow; MFSA synthesizes flattened bodies).
const loopDesign = `
design smoother
input start, coeff
loop smooth cycles 2 binds acc = start, d = coeff yields nxt {
    half = acc >> 1
    nxt = half + d
}
final = smooth * 3
`

func main() {
	// Style 1 with chaining: logic ops chain after the arithmetic.
	d1, err := hls.SynthesizeSource(design, hls.Config{CS: 8, ClockNs: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("style 1 (chained, 100ns steps):")
	fmt.Printf("  ALUs: %s\n  cost: %.0f um^2, %d registers\n",
		d1.Datapath.ALUSummary(), d1.Cost.Total, d1.Cost.NumRegs)

	d2, err := hls.SynthesizeSource(design, hls.Config{CS: 8, ClockNs: 100, Style: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("style 2 (self-testable, no ALU self-loops):")
	fmt.Printf("  ALUs: %s\n  cost: %.0f um^2 (%+.1f%% vs style 1)\n",
		d2.Datapath.ALUSummary(), d2.Cost.Total, (d2.Cost.Total/d1.Cost.Total-1)*100)

	// The branch operations are mutually exclusive: check they share.
	g, _, err := hls.ParseBehavior(design)
	if err != nil {
		log.Fatal(err)
	}
	lo, _ := g.Lookup("lo_out")
	hi, _ := g.Lookup("hi_out")
	fmt.Printf("lo_out/hi_out mutually exclusive: %v\n", g.MutuallyExclusive(lo.ID, hi.ID))

	// Simulate both branches' dataflow values.
	vals, err := d1.Simulate(map[string]int64{"sample": 10, "coeff": 3, "limit": 100, "bias": 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample=10 coeff=3 limit=100 bias=5 => biased=%d lo_out=%d hi_out=%d final=%d\n",
		vals["biased"], vals["lo_out"], vals["hi_out"], vals["final"])
	fmt.Printf("condition (biased < limit) = %d, so a controller commits lo_out\n", vals["cond1"])

	// Loop folding (§5.2) with the MFS flow.
	ld, err := hls.ScheduleSource(loopDesign, hls.Config{CS: 4})
	if err != nil {
		log.Fatal(err)
	}
	lv, err := ld.Simulate(map[string]int64{"start": 20, "coeff": 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("folded loop: start=20 coeff=7 => smooth=%d final=%d (body scheduled in 2 local steps)\n",
		lv["smooth"], lv["final"])

	if err := d1.SelfCheck(5); err != nil {
		log.Fatal(err)
	}
	if err := d2.SelfCheck(5); err != nil {
		log.Fatal(err)
	}
	if err := ld.SelfCheck(5); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all designs verified against the behavioral reference")
}
