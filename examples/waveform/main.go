// Waveform: the tooling side of the library — save a design as JSON,
// reload it, dump a VCD waveform of a simulation run, and generate a
// self-checking Verilog testbench. This example uses internal packages
// directly (it lives in the repository), demonstrating the persistence
// and verification substrates around the schedulers.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/behav"
	"repro/internal/dfgio"
	"repro/internal/emit"
	"repro/internal/mfs"
	"repro/internal/sim"
)

const design = `
design pulse
input level, threshold, gain
output shaped
over = level > threshold
delta = level - threshold
amp = delta * gain @2
shaped = amp + level
`

func main() {
	g, consts, err := behav.BuildSource(design)
	if err != nil {
		log.Fatal(err)
	}
	_ = consts

	s, err := mfs.Schedule(g, mfs.Options{CS: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(s.Gantt())

	dir, err := os.MkdirTemp("", "hls-waveform")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Persist the scheduled design as JSON and reload it.
	data, err := dfgio.EncodeSchedule(s)
	if err != nil {
		log.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "pulse.json")
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		log.Fatal(err)
	}
	reloaded, err := dfgio.DecodeSchedule(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved and reloaded schedule: %d ops, cs=%d (%d bytes JSON)\n",
		reloaded.Graph.Len(), reloaded.CS, len(data))

	// 2. Dump a VCD waveform of one simulation run.
	var vcd strings.Builder
	inputs := map[string]int64{"level": 9, "threshold": 5, "gain": 3}
	if err := sim.TraceVCD(reloaded, inputs, &vcd); err != nil {
		log.Fatal(err)
	}
	vcdPath := filepath.Join(dir, "pulse.vcd")
	if err := os.WriteFile(vcdPath, []byte(vcd.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VCD waveform: %d change lines (view with gtkwave)\n",
		strings.Count(vcd.String(), "\nb"))

	// 3. Generate a self-checking testbench with simulator-derived
	// expected values.
	vectors := []map[string]int64{
		inputs,
		sim.RandomInputs(reloaded.Graph, 42),
	}
	tb, err := emit.Testbench(reloaded.Graph, reloaded, vectors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("testbench: %d lines, %d vectors\n",
		strings.Count(tb, "\n"), len(vectors))
	vals, err := sim.Run(reloaded, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shaped(level=9, threshold=5, gain=3) = %d\n", vals["shaped"])
}
