// Concurrency stress test: many goroutines synthesize, schedule and
// sweep the *same* graph simultaneously. It is the determinism and
// data-race guard for the parallel engine — scheduling must treat graphs
// and libraries as read-only, and every worker must get byte-identical
// results. Run it under `go test -race ./...` (part of the tier-1 verify
// path) to have the race detector check the immutability claim.
package hls_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	hls "repro"
	"repro/internal/benchmarks"
)

// designKey canonically serializes a design: total cost, ALU set and
// every placement in node order. Map iteration order never leaks in.
func designKey(d *hls.Design) string {
	var b strings.Builder
	alus := ""
	if d.Datapath != nil {
		alus = d.Datapath.ALUSummary()
	}
	fmt.Fprintf(&b, "cs=%d cost=%.3f alus=%s\n", d.Schedule.CS, d.Cost.Total, alus)
	ids := make([]hls.NodeID, 0, len(d.Schedule.Placements))
	for id := range d.Schedule.Placements {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := d.Schedule.Placements[id]
		fmt.Fprintf(&b, "%d@%d:%s#%d\n", id, p.Step, p.Type, p.Index)
	}
	return b.String()
}

// TestConcurrentSynthesisOnSharedGraph hammers one shared graph with 32
// concurrent workers, each running MFSA synthesis, the speculative
// resource-constrained MFS search, and a full parallel sweep, and
// asserts all workers produced identical results.
func TestConcurrentSynthesisOnSharedGraph(t *testing.T) {
	ex := benchmarks.Diffeq()
	g := ex.Graph // shared, never cloned: workers must not mutate it
	limits := map[string]int{"*": 2, "+": 1, "-": 1, "<": 1}

	const workers = 32
	type result struct {
		synth, sched, sweep string
	}
	results := make([]result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d, err := hls.Synthesize(g, hls.Config{CS: 4})
			if err != nil {
				errs[w] = fmt.Errorf("worker %d synthesize: %w", w, err)
				return
			}
			results[w].synth = designKey(d)

			s, err := hls.ScheduleGraph(g, hls.Config{Limits: limits})
			if err != nil {
				errs[w] = fmt.Errorf("worker %d schedule: %w", w, err)
				return
			}
			results[w].sched = designKey(s)

			points, err := hls.Sweep(g, hls.Config{}, 1, 10)
			if err != nil {
				errs[w] = fmt.Errorf("worker %d sweep: %w", w, err)
				return
			}
			results[w].sweep = fmt.Sprintf("%+v", points)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatalf("worker %d diverged from worker 0:\n%+v\nvs\n%+v", w, results[w], results[0])
		}
	}
}
