// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6), plus the ablation studies. Each benchmark
// prints its regenerated table once (so `go test -bench . -benchmem`
// reproduces the paper's rows) and then times the computation.
package hls_test

import (
	"fmt"
	"sync"
	"testing"

	hls "repro"
	"repro/internal/benchmarks"
	"repro/internal/experiments"
	"repro/internal/mfs"
	"repro/internal/mfsa"
	"repro/internal/report"
)

var printOnce sync.Map

func printTableOnce(key string, fn func() (*report.Table, error), b *testing.B) {
	if _, done := printOnce.LoadOrStore(key, true); done {
		return
	}
	t, err := fn()
	if err != nil {
		b.Fatal(err)
	}
	fmt.Println(t.String())
}

// BenchmarkTable1 regenerates Table 1: MFS functional-unit mixes for the
// six literature examples across their time constraints.
func BenchmarkTable1(b *testing.B) {
	printTableOnce("table1", experiments.Table1, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table 2: MFSA RTL results (ALU set, cost,
// registers, multiplexers) in both design styles.
func BenchmarkTable2(b *testing.B) {
	printTableOnce("table2", experiments.Table2, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineComparison regenerates the §6 comparison of MFS/MFSA
// against force-directed scheduling with naive allocation.
func BenchmarkBaselineComparison(b *testing.B) {
	printTableOnce("compare", experiments.Compare, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Compare(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStyleOverhead regenerates the style-2-vs-style-1 cost
// overhead study (§6: 2–11% in the paper).
func BenchmarkStyleOverhead(b *testing.B) {
	printTableOnce("style", experiments.StyleOverhead, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.StyleOverhead(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 regenerates Figure 1 (present/next position on the
// placement table).
func BenchmarkFigure1(b *testing.B) {
	if _, done := printOnce.LoadOrStore("fig1", true); !done {
		fmt.Println(experiments.Figure1())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure1()
	}
}

// BenchmarkFigure2 regenerates Figure 2 (PF/RF/FF/MF frame construction).
func BenchmarkFigure2(b *testing.B) {
	if _, done := printOnce.LoadOrStore("fig2", true); !done {
		f, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		fmt.Println(f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMFSRuntime times MFS per example — the paper's "< 0.2 s per
// example on a SPARC SLC" claim (§6), one sub-benchmark per example.
func BenchmarkMFSRuntime(b *testing.B) {
	for _, ex := range benchmarks.All() {
		ex := ex
		b.Run(ex.Name, func(b *testing.B) {
			cs := ex.TimeConstraints[0]
			opt := mfs.Options{CS: cs, ClockNs: ex.ClockNs}
			if ex.Latency != nil {
				opt.Latency = ex.Latency(cs)
			}
			for i := 0; i < b.N; i++ {
				if _, err := mfs.Schedule(ex.Graph, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMFSARuntime times MFSA per example — the paper's "< 0.4 s"
// claim (§6).
func BenchmarkMFSARuntime(b *testing.B) {
	for _, ex := range benchmarks.All() {
		ex := ex
		b.Run(ex.Name, func(b *testing.B) {
			opt := mfsa.Options{CS: ex.TimeConstraints[0], ClockNs: ex.ClockNs}
			for i := 0; i < b.N; i++ {
				if _, err := mfsa.Synthesize(ex.Graph, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLiapunov regenerates the guiding-function ablation.
func BenchmarkAblationLiapunov(b *testing.B) {
	printTableOnce("abl-liapunov", experiments.AblationLiapunov, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationLiapunov(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWeights regenerates the MFSA Liapunov-term ablation.
func BenchmarkAblationWeights(b *testing.B) {
	printTableOnce("abl-weights", experiments.AblationWeights, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationWeights(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRedundantFrame regenerates the RF-mechanism ablation.
func BenchmarkAblationRedundantFrame(b *testing.B) {
	printTableOnce("abl-rf", experiments.AblationRedundantFrame, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRedundantFrame(); err != nil {
			b.Fatal(err)
		}
	}
}

// sweepBenchRange is the diffeq cs range both sweep benchmarks cover —
// critical path through critical path + 12, the same window
// experiments.MeasurePerf records in BENCH_sweep.json.
func sweepBenchRange() (*benchmarks.Example, int, int) {
	ex := benchmarks.Diffeq()
	cp := ex.Graph.CriticalPathCycles()
	return ex, cp, cp + 12
}

// BenchmarkSweep times the design-space sweep with the pool forced to a
// single worker — the sequential baseline the parallel path is compared
// against.
func BenchmarkSweep(b *testing.B) {
	ex, lo, hi := sweepBenchRange()
	for i := 0; i < b.N; i++ {
		if _, err := hls.Sweep(ex.Graph, hls.Config{Parallelism: 1}, lo, hi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSweep times the same sweep with the default worker
// pool (GOMAXPROCS workers). The ratio to BenchmarkSweep is the sweep
// speedup the parallel engine delivers.
func BenchmarkParallelSweep(b *testing.B) {
	ex, lo, hi := sweepBenchRange()
	for i := 0; i < b.N; i++ {
		if _, err := hls.Sweep(ex.Graph, hls.Config{}, lo, hi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhases regenerates the simultaneous-vs-sequential phase
// comparison (the paper's §1 motivation).
func BenchmarkPhases(b *testing.B) {
	printTableOnce("phases", experiments.Phases, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Phases(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterconnect regenerates the §5.7 interconnect-sharing study.
func BenchmarkInterconnect(b *testing.B) {
	printTableOnce("interconnect", experiments.Interconnect, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Interconnect(); err != nil {
			b.Fatal(err)
		}
	}
}
